#include "geom/predicates.h"

#include <gtest/gtest.h>

#include "base/rng.h"

namespace agis::geom {
namespace {

Geometry Pt(double x, double y) { return Geometry::FromPoint({x, y}); }

Geometry Line(std::vector<Point> pts) {
  return Geometry::FromLineString(LineString{std::move(pts)});
}

Geometry Rect(double x0, double y0, double x1, double y1) {
  Polygon poly;
  poly.outer = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
  return Geometry::FromPolygon(poly);
}

TEST(Segments, BasicIntersection) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Shared endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // Collinear disjoint.
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(Segments, ProperCrossExcludesTouching) {
  EXPECT_TRUE(SegmentsProperlyCross({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsProperlyCross({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_FALSE(SegmentsProperlyCross({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  // T-junction: endpoint on interior is not a proper cross.
  EXPECT_FALSE(SegmentsProperlyCross({0, 0}, {2, 0}, {1, 0}, {1, 2}));
}

TEST(PointOnSegment, EndpointsAndInterior) {
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({0, 0}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({1, 1.01}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));
}

TEST(RingClassification, InsideOutsideBoundary) {
  const std::vector<Point> square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_EQ(ClassifyPointInRing({2, 2}, square), RingSide::kInside);
  EXPECT_EQ(ClassifyPointInRing({5, 2}, square), RingSide::kOutside);
  EXPECT_EQ(ClassifyPointInRing({0, 2}, square), RingSide::kBoundary);
  EXPECT_EQ(ClassifyPointInRing({4, 4}, square), RingSide::kBoundary);
}

TEST(PolygonClassification, HolesRespected) {
  Polygon poly;
  poly.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  poly.holes.push_back({{4, 4}, {6, 4}, {6, 6}, {4, 6}});
  EXPECT_EQ(ClassifyPointInPolygon({2, 2}, poly), RingSide::kInside);
  EXPECT_EQ(ClassifyPointInPolygon({5, 5}, poly), RingSide::kOutside);
  EXPECT_EQ(ClassifyPointInPolygon({4, 5}, poly), RingSide::kBoundary);
  EXPECT_EQ(ClassifyPointInPolygon({-1, 5}, poly), RingSide::kOutside);
}

TEST(Distances, PointSegmentAndSegmentSegment) {
  EXPECT_DOUBLE_EQ(DistancePointSegment({0, 3}, {-1, 0}, {1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({5, 0}, {-1, 0}, {1, 0}), 4.0);
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {1, 0}, {0, 2}, {1, 2}),
                   2.0);
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {2, 2}, {0, 2}, {2, 0}),
                   0.0);
}

TEST(GeometryDistance, MixedKinds) {
  EXPECT_DOUBLE_EQ(Distance(Pt(0, 0), Pt(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Pt(0, 5), Line({{-1, 0}, {1, 0}})), 5.0);
  EXPECT_DOUBLE_EQ(Distance(Pt(5, 5), Rect(0, 0, 4, 4)), std::sqrt(2.0));
  // Point inside polygon: distance 0.
  EXPECT_DOUBLE_EQ(Distance(Pt(2, 2), Rect(0, 0, 4, 4)), 0.0);
}

TEST(Intersects, PointCases) {
  EXPECT_TRUE(Intersects(Pt(1, 1), Pt(1, 1)));
  EXPECT_FALSE(Intersects(Pt(1, 1), Pt(1, 2)));
  EXPECT_TRUE(Intersects(Pt(1, 0), Line({{0, 0}, {2, 0}})));
  EXPECT_TRUE(Intersects(Pt(2, 2), Rect(0, 0, 4, 4)));
  EXPECT_TRUE(Intersects(Pt(0, 2), Rect(0, 0, 4, 4)));  // Boundary.
  EXPECT_FALSE(Intersects(Pt(9, 9), Rect(0, 0, 4, 4)));
}

TEST(Intersects, LineAndPolygonCases) {
  EXPECT_TRUE(Intersects(Line({{0, 0}, {2, 2}}), Line({{0, 2}, {2, 0}})));
  EXPECT_FALSE(Intersects(Line({{0, 0}, {1, 0}}), Line({{0, 1}, {1, 1}})));
  // Line through polygon without vertex inside.
  EXPECT_TRUE(Intersects(Line({{-1, 2}, {5, 2}}), Rect(0, 0, 4, 4)));
  // Line fully inside polygon.
  EXPECT_TRUE(Intersects(Line({{1, 1}, {2, 2}}), Rect(0, 0, 4, 4)));
  // Polygon containing polygon.
  EXPECT_TRUE(Intersects(Rect(0, 0, 10, 10), Rect(2, 2, 3, 3)));
  EXPECT_FALSE(Intersects(Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)));
}

TEST(ContainsWithin, PolygonOverOthers) {
  EXPECT_TRUE(Contains(Rect(0, 0, 10, 10), Pt(5, 5)));
  EXPECT_FALSE(Contains(Rect(0, 0, 10, 10), Pt(0, 5)));  // Boundary only.
  EXPECT_TRUE(Contains(Rect(0, 0, 10, 10), Line({{1, 1}, {9, 9}})));
  EXPECT_FALSE(Contains(Rect(0, 0, 10, 10), Line({{1, 1}, {11, 11}})));
  EXPECT_TRUE(Contains(Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)));
  EXPECT_FALSE(Contains(Rect(2, 2, 5, 5), Rect(0, 0, 10, 10)));
  EXPECT_TRUE(Within(Rect(2, 2, 5, 5), Rect(0, 0, 10, 10)));
  // Equal polygons contain each other.
  EXPECT_TRUE(Contains(Rect(0, 0, 4, 4), Rect(0, 0, 4, 4)));
}

TEST(ContainsWithin, HoleBlocksContainment) {
  Polygon donut;
  donut.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  donut.holes.push_back({{3, 3}, {7, 3}, {7, 7}, {3, 7}});
  const Geometry g = Geometry::FromPolygon(donut);
  EXPECT_FALSE(Contains(g, Pt(5, 5)));        // In the hole.
  EXPECT_TRUE(Contains(g, Pt(1, 1)));
  EXPECT_FALSE(Contains(g, Rect(4, 4, 6, 6)));  // Entirely in hole.
  EXPECT_FALSE(Contains(g, Rect(2, 2, 8, 8)));  // Straddles the hole.
  EXPECT_FALSE(Contains(g, Line({{1, 5}, {9, 5}})));  // Crosses the hole.
  EXPECT_TRUE(Contains(g, Line({{1, 1}, {9, 1}})));
}

TEST(Touches, BoundaryOnlyContact) {
  // Two squares sharing an edge.
  EXPECT_TRUE(Touches(Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)));
  // Sharing a corner.
  EXPECT_TRUE(Touches(Rect(0, 0, 2, 2), Rect(2, 2, 4, 4)));
  // Overlapping: not touching.
  EXPECT_FALSE(Touches(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)));
  // Point on boundary touches polygon.
  EXPECT_TRUE(Touches(Pt(0, 1), Rect(0, 0, 2, 2)));
  EXPECT_FALSE(Touches(Pt(1, 1), Rect(0, 0, 2, 2)));
  // Line ending on polygon boundary.
  EXPECT_TRUE(Touches(Line({{-2, 1}, {0, 1}}), Rect(0, 0, 2, 2)));
  // Lines meeting at endpoints.
  EXPECT_TRUE(Touches(Line({{0, 0}, {1, 1}}), Line({{1, 1}, {2, 0}})));
}

TEST(Crosses, LineThroughPolygon) {
  EXPECT_TRUE(Crosses(Line({{-1, 1}, {5, 1}}), Rect(0, 0, 4, 4)));
  // Line fully inside does not cross.
  EXPECT_FALSE(Crosses(Line({{1, 1}, {2, 2}}), Rect(0, 0, 4, 4)));
  // Line along the boundary does not cross.
  EXPECT_FALSE(Crosses(Line({{0, 0}, {4, 0}}), Rect(0, 0, 4, 4)));
  // X-crossing lines.
  EXPECT_TRUE(Crosses(Line({{0, 0}, {2, 2}}), Line({{0, 2}, {2, 0}})));
  // Collinear overlap is overlap, not crossing.
  EXPECT_FALSE(Crosses(Line({{0, 0}, {2, 0}}), Line({{1, 0}, {3, 0}})));
}

TEST(Overlaps, SameDimensionPartialSharing) {
  EXPECT_TRUE(Overlaps(Rect(0, 0, 2, 2), Rect(1, 1, 3, 3)));
  EXPECT_FALSE(Overlaps(Rect(0, 0, 4, 4), Rect(1, 1, 2, 2)));  // Contained.
  EXPECT_FALSE(Overlaps(Rect(0, 0, 2, 2), Rect(2, 0, 4, 2)));  // Touches.
  EXPECT_TRUE(Overlaps(Line({{0, 0}, {2, 0}}), Line({{1, 0}, {3, 0}})));
  EXPECT_FALSE(Overlaps(Line({{0, 0}, {2, 2}}), Line({{0, 2}, {2, 0}})));
  EXPECT_FALSE(Overlaps(Pt(1, 1), Rect(0, 0, 2, 2)));  // Dim mismatch.
}

// Property suite: predicate consistency over random shape pairs.
class PredicateConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PredicateConsistency, InvariantsHold) {
  agis::Rng rng(GetParam());
  auto random_geometry = [&rng]() -> Geometry {
    switch (rng.Uniform(3)) {
      case 0:
        return Geometry::FromPoint(
            {rng.UniformDouble(0, 20), rng.UniformDouble(0, 20)});
      case 1: {
        LineString ls;
        const size_t n = 2 + rng.Uniform(3);
        for (size_t i = 0; i < n; ++i) {
          ls.points.push_back(
              {rng.UniformDouble(0, 20), rng.UniformDouble(0, 20)});
        }
        return Geometry::FromLineString(ls);
      }
      default: {
        const double x = rng.UniformDouble(0, 15);
        const double y = rng.UniformDouble(0, 15);
        const double w = 1 + rng.UniformDouble(0, 5);
        const double h = 1 + rng.UniformDouble(0, 5);
        return Rect(x, y, x + w, y + h);
      }
    }
  };
  for (int iter = 0; iter < 60; ++iter) {
    const Geometry a = random_geometry();
    const Geometry b = random_geometry();
    // Disjoint is the negation of Intersects, both ways.
    EXPECT_EQ(Disjoint(a, b), !Intersects(a, b));
    EXPECT_EQ(Intersects(a, b), Intersects(b, a));
    // Interiors intersecting implies intersecting.
    if (InteriorsIntersect(a, b)) {
      EXPECT_TRUE(Intersects(a, b));
    }
    // Contains implies Intersects and interiors intersecting.
    if (Contains(a, b)) {
      EXPECT_TRUE(Intersects(a, b));
      EXPECT_TRUE(InteriorsIntersect(a, b));
      EXPECT_TRUE(Within(b, a));
    }
    // Touches implies intersecting without interior sharing, and is
    // symmetric.
    if (Touches(a, b)) {
      EXPECT_TRUE(Intersects(a, b));
      EXPECT_FALSE(InteriorsIntersect(a, b));
      EXPECT_TRUE(Touches(b, a));
    }
    // Overlaps is symmetric and excludes containment.
    if (Overlaps(a, b)) {
      EXPECT_TRUE(Overlaps(b, a));
      EXPECT_FALSE(Contains(a, b));
      EXPECT_FALSE(Contains(b, a));
    }
    // Distance 0 iff intersecting.
    EXPECT_EQ(Distance(a, b) <= 1e-9, Intersects(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredicateConsistency,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace agis::geom
