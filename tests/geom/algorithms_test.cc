#include "geom/algorithms.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "geom/predicates.h"

namespace agis::geom {
namespace {

TEST(SimplifyLine, RemovesCollinearNoise) {
  LineString line;
  for (int i = 0; i <= 10; ++i) {
    line.points.push_back({static_cast<double>(i), 0.001 * (i % 2)});
  }
  const LineString simplified = SimplifyLine(line, 0.01);
  EXPECT_EQ(simplified.points.size(), 2u);
  EXPECT_EQ(simplified.points.front(), line.points.front());
  EXPECT_EQ(simplified.points.back(), line.points.back());
}

TEST(SimplifyLine, KeepsSignificantCorners) {
  LineString line{{{0, 0}, {5, 0}, {5, 5}, {10, 5}}};
  const LineString simplified = SimplifyLine(line, 0.5);
  EXPECT_EQ(simplified.points.size(), 4u);  // Every corner matters.
}

TEST(SimplifyLine, ZeroToleranceAndTinyLinesUnchanged) {
  LineString line{{{0, 0}, {1, 1}, {2, 0}}};
  EXPECT_EQ(SimplifyLine(line, 0).points.size(), 3u);
  LineString two{{{0, 0}, {1, 1}}};
  EXPECT_EQ(SimplifyLine(two, 10).points.size(), 2u);
}

// Property: simplified line stays within tolerance of the original
// vertices and never gains points.
class SimplifyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyProperty, HausdorffBoundHolds) {
  agis::Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    LineString line;
    double x = 0;
    double y = 0;
    const size_t n = 10 + rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      x += rng.UniformDouble(0.2, 2.0);
      y += rng.UniformDouble(-1.0, 1.0);
      line.points.push_back({x, y});
    }
    const double tolerance = 0.5;
    const LineString simplified = SimplifyLine(line, tolerance);
    ASSERT_GE(simplified.points.size(), 2u);
    EXPECT_LE(simplified.points.size(), line.points.size());
    const Geometry simple_geom = Geometry::FromLineString(simplified);
    for (const Point& p : line.points) {
      EXPECT_LE(Distance(Geometry::FromPoint(p), simple_geom),
                tolerance + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty,
                         ::testing::Values(41, 42, 43, 44));

TEST(SimplifyGeometry, PolygonsNeverCollapse) {
  Polygon poly;
  for (int i = 0; i < 32; ++i) {
    const double angle = 2 * M_PI * i / 32.0;
    poly.outer.push_back({10 * std::cos(angle), 10 * std::sin(angle)});
  }
  const Geometry simplified =
      Simplify(Geometry::FromPolygon(poly), 1.0);
  ASSERT_TRUE(simplified.is_polygon());
  EXPECT_GE(simplified.polygon().outer.size(), 3u);
  EXPECT_LT(simplified.polygon().outer.size(), 32u);
  // Area roughly preserved (within the tolerance band).
  EXPECT_NEAR(simplified.polygon().Area(), poly.Area(),
              poly.OuterPerimeter() * 1.0);
  // Points pass through untouched.
  const Geometry pt = Geometry::FromPoint({1, 2});
  EXPECT_EQ(Simplify(pt, 5.0), pt);
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  auto hull = ConvexHull({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}});
  ASSERT_TRUE(hull.ok());
  EXPECT_EQ(hull->outer.size(), 4u);
  EXPECT_DOUBLE_EQ(hull->Area(), 16.0);
  // Every input point is inside or on the hull.
  for (const Point& p : {Point{2, 2}, Point{1, 3}, Point{0, 0}}) {
    EXPECT_NE(ClassifyPointInPolygon(p, *hull), RingSide::kOutside);
  }
}

TEST(ConvexHull, RejectsDegenerateInput) {
  EXPECT_TRUE(ConvexHull({{0, 0}, {1, 1}}).status().IsInvalidArgument());
  EXPECT_TRUE(
      ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).status().IsInvalidArgument());
  EXPECT_TRUE(ConvexHull({{0, 0}, {0, 0}, {0, 0}}).status().IsInvalidArgument());
}

// Property: hull contains all points and is convex.
TEST(ConvexHull, RandomPointCloudsProperty) {
  agis::Rng rng(77);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Point> cloud;
    const size_t n = 10 + rng.Uniform(100);
    for (size_t i = 0; i < n; ++i) {
      cloud.push_back({rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)});
    }
    auto hull = ConvexHull(cloud);
    ASSERT_TRUE(hull.ok());
    for (const Point& p : cloud) {
      EXPECT_NE(ClassifyPointInPolygon(p, *hull), RingSide::kOutside);
    }
    // Convexity: every consecutive triple turns the same way.
    const auto& ring = hull->outer;
    for (size_t i = 0; i < ring.size(); ++i) {
      EXPECT_GE(Cross(ring[i], ring[(i + 1) % ring.size()],
                      ring[(i + 2) % ring.size()]),
                -1e-9);
    }
  }
}

TEST(BufferPoint, ApproximatesDisc) {
  const Polygon disc = BufferPoint({5, 5}, 2.0, 32);
  EXPECT_EQ(disc.outer.size(), 32u);
  // Area approaches pi*r^2 from below.
  EXPECT_NEAR(disc.Area(), M_PI * 4.0, 0.2);
  EXPECT_EQ(ClassifyPointInPolygon({5, 5}, disc), RingSide::kInside);
  EXPECT_EQ(ClassifyPointInPolygon({8, 5}, disc), RingSide::kOutside);
}

TEST(BufferLine, CoversTheLine) {
  LineString line{{{0, 0}, {10, 0}, {10, 10}}};
  auto corridor = BufferLine(line, 1.0);
  ASSERT_TRUE(corridor.ok());
  // Every vertex and midpoint is strictly inside the corridor.
  for (const Point& p :
       {Point{0, 0}, Point{5, 0}, Point{10, 0}, Point{10, 5}, Point{10, 10}}) {
    EXPECT_EQ(ClassifyPointInPolygon(p, *corridor), RingSide::kInside);
  }
  EXPECT_TRUE(BufferLine(LineString{}, 1.0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace agis::geom
