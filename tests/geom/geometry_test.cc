#include "geom/geometry.h"

#include <gtest/gtest.h>

#include "geom/bbox.h"
#include "geom/point.h"

namespace agis::geom {
namespace {

TEST(Point, EqualityUsesEpsilon) {
  EXPECT_EQ((Point{1, 2}), (Point{1 + 1e-12, 2 - 1e-12}));
  EXPECT_FALSE((Point{1, 2}) == (Point{1.1, 2}));
}

TEST(Point, DistanceAndCross) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_GT(Cross({0, 0}, {1, 0}, {0, 1}), 0.0);  // Left turn.
  EXPECT_LT(Cross({0, 0}, {1, 0}, {0, -1}), 0.0);
  EXPECT_DOUBLE_EQ(Cross({0, 0}, {1, 1}, {2, 2}), 0.0);
}

TEST(BoundingBox, EmptyByDefault) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.Area(), 0.0);
  box.Expand(Point{3, 4});
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.Width(), 0.0);
  EXPECT_TRUE(box.Contains(Point{3, 4}));
}

TEST(BoundingBox, ExpandUnionContains) {
  BoundingBox a(0, 0, 2, 2);
  BoundingBox b(1, 1, 4, 3);
  const BoundingBox u = BoundingBox::Union(a, b);
  EXPECT_EQ(u, BoundingBox(0, 0, 4, 3));
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(BoundingBox(3, 3, 4, 4)));
  // Touching boxes intersect.
  EXPECT_TRUE(a.Intersects(BoundingBox(2, 0, 3, 2)));
}

TEST(BoundingBox, EnlargementArea) {
  BoundingBox a(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(BoundingBox::EnlargementArea(a, BoundingBox(1, 1, 2, 2)),
                   0.0);
  EXPECT_DOUBLE_EQ(BoundingBox::EnlargementArea(a, BoundingBox(0, 0, 4, 2)),
                   4.0);
}

TEST(BoundingBox, InflatedAndCenter) {
  BoundingBox a(0, 0, 2, 4);
  const BoundingBox inflated = a.Inflated(1);
  EXPECT_EQ(inflated, BoundingBox(-1, -1, 3, 5));
  EXPECT_EQ(a.Center(), (Point{1, 2}));
  EXPECT_DOUBLE_EQ(a.Margin(), 6.0);
}

TEST(LineString, LengthAndClosed) {
  LineString ls{{{0, 0}, {3, 0}, {3, 4}}};
  EXPECT_DOUBLE_EQ(ls.Length(), 7.0);
  EXPECT_FALSE(ls.IsClosed());
  LineString ring{{{0, 0}, {1, 0}, {1, 1}, {0, 0}}};
  EXPECT_TRUE(ring.IsClosed());
}

TEST(Polygon, AreaWithHoles) {
  Polygon poly;
  poly.outer = {{0, 0}, {10, 0}, {10, 10}, {0, 10}};
  EXPECT_DOUBLE_EQ(poly.Area(), 100.0);
  poly.holes.push_back({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  EXPECT_DOUBLE_EQ(poly.Area(), 96.0);
  EXPECT_DOUBLE_EQ(poly.OuterPerimeter(), 40.0);
}

TEST(Polygon, AreaIndependentOfOrientation) {
  Polygon ccw;
  ccw.outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  Polygon cw;
  cw.outer = {{0, 0}, {0, 4}, {4, 4}, {4, 0}};
  EXPECT_DOUBLE_EQ(ccw.Area(), cw.Area());
}

TEST(Geometry, KindsAndBounds) {
  const Geometry pt = Geometry::FromPoint({2, 3});
  EXPECT_TRUE(pt.is_point());
  EXPECT_EQ(pt.Dimension(), 0);
  EXPECT_EQ(pt.Bounds(), BoundingBox(2, 3, 2, 3));

  const Geometry line =
      Geometry::FromLineString(LineString{{{0, 0}, {5, 2}}});
  EXPECT_EQ(line.Dimension(), 1);
  EXPECT_EQ(line.Bounds(), BoundingBox(0, 0, 5, 2));
  EXPECT_EQ(line.NumPoints(), 2u);

  Polygon poly;
  poly.outer = {{0, 0}, {4, 0}, {4, 4}};
  const Geometry area = Geometry::FromPolygon(poly);
  EXPECT_EQ(area.Dimension(), 2);
  EXPECT_EQ(area.KindName(), "POLYGON");

  const Geometry mp = Geometry::FromMultiPoint({{1, 1}, {2, 2}});
  EXPECT_EQ(mp.NumPoints(), 2u);
  EXPECT_EQ(mp.Bounds(), BoundingBox(1, 1, 2, 2));
}

TEST(Geometry, DefaultIsEmptyMultipoint) {
  const Geometry g;
  EXPECT_TRUE(g.is_multipoint());
  EXPECT_TRUE(g.Bounds().empty());
  EXPECT_EQ(g.NumPoints(), 0u);
}

TEST(Geometry, EqualityByKindAndCoords) {
  EXPECT_EQ(Geometry::FromPoint({1, 2}), Geometry::FromPoint({1, 2}));
  EXPECT_FALSE(Geometry::FromPoint({1, 2}) == Geometry::FromPoint({1, 3}));
  EXPECT_FALSE(Geometry::FromPoint({1, 2}) ==
               Geometry::FromMultiPoint({{1, 2}}));
  Polygon a;
  a.outer = {{0, 0}, {1, 0}, {1, 1}};
  Polygon b = a;
  EXPECT_EQ(Geometry::FromPolygon(a), Geometry::FromPolygon(b));
  b.holes.push_back({{0.1, 0.1}, {0.2, 0.1}, {0.2, 0.2}});
  EXPECT_FALSE(Geometry::FromPolygon(a) == Geometry::FromPolygon(b));
}

}  // namespace
}  // namespace agis::geom
