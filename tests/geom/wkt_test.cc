#include "geom/wkt.h"

#include <gtest/gtest.h>

#include "base/rng.h"

namespace agis::geom {
namespace {

TEST(Wkt, FormatsPoint) {
  EXPECT_EQ(ToWkt(Geometry::FromPoint({3, 4.5})), "POINT (3 4.5)");
}

TEST(Wkt, FormatsLineString) {
  EXPECT_EQ(ToWkt(Geometry::FromLineString(LineString{{{0, 0}, {1, 2}}})),
            "LINESTRING (0 0, 1 2)");
}

TEST(Wkt, FormatsPolygonWithHole) {
  Polygon poly;
  poly.outer = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  poly.holes.push_back({{1, 1}, {2, 1}, {2, 2}});
  EXPECT_EQ(ToWkt(Geometry::FromPolygon(poly)),
            "POLYGON ((0 0, 4 0, 4 4, 0 4), (1 1, 2 1, 2 2))");
}

TEST(Wkt, FormatsMultiPoint) {
  EXPECT_EQ(ToWkt(Geometry::FromMultiPoint({{1, 2}, {3, 4}})),
            "MULTIPOINT (1 2, 3 4)");
  EXPECT_EQ(ToWkt(Geometry::FromMultiPoint({})), "MULTIPOINT EMPTY");
}

TEST(Wkt, ParsesPoint) {
  auto g = ParseWkt("POINT (3 4)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value(), Geometry::FromPoint({3, 4}));
}

TEST(Wkt, ParsesWithWeirdWhitespaceAndCase) {
  auto g = ParseWkt("  point(3   4.25)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value(), Geometry::FromPoint({3, 4.25}));
}

TEST(Wkt, ParsesNegativeAndScientific) {
  auto g = ParseWkt("LINESTRING (-1.5 2e2, 3 -4)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().linestring().points[0], (Point{-1.5, 200}));
}

TEST(Wkt, ParsesPolygonWithClosingDuplicate) {
  auto g = ParseWkt("POLYGON ((0 0, 4 0, 4 4, 0 0))");
  ASSERT_TRUE(g.ok());
  // Closing duplicate dropped.
  EXPECT_EQ(g.value().polygon().outer.size(), 3u);
}

TEST(Wkt, ParsesMultiPointEmpty) {
  auto g = ParseWkt("MULTIPOINT EMPTY");
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g.value().multipoint().empty());
}

TEST(Wkt, RejectsBadInput) {
  EXPECT_TRUE(ParseWkt("").status().IsParseError());
  EXPECT_TRUE(ParseWkt("CIRCLE (0 0, 5)").status().IsParseError());
  EXPECT_TRUE(ParseWkt("POINT 3 4").status().IsParseError());
  EXPECT_TRUE(ParseWkt("POINT (3)").status().IsParseError());
  EXPECT_TRUE(ParseWkt("LINESTRING (1 1)").status().IsParseError());
  EXPECT_TRUE(ParseWkt("POLYGON ((0 0, 1 1))").status().IsParseError());
  EXPECT_TRUE(ParseWkt("POINT (a b)").status().IsParseError());
}

// Property: ToWkt / ParseWkt round-trips over random geometries.
class WktRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WktRoundTrip, RandomGeometriesSurvive) {
  agis::Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    Geometry g;
    switch (rng.Uniform(4)) {
      case 0:
        g = Geometry::FromPoint(
            {rng.UniformDouble(-1e3, 1e3), rng.UniformDouble(-1e3, 1e3)});
        break;
      case 1: {
        LineString ls;
        const size_t n = 2 + rng.Uniform(6);
        for (size_t i = 0; i < n; ++i) {
          ls.points.push_back(
              {rng.UniformDouble(-100, 100), rng.UniformDouble(-100, 100)});
        }
        g = Geometry::FromLineString(ls);
        break;
      }
      case 2: {
        Polygon poly;
        const double cx = rng.UniformDouble(-50, 50);
        const double cy = rng.UniformDouble(-50, 50);
        const size_t n = 3 + rng.Uniform(5);
        for (size_t i = 0; i < n; ++i) {
          const double angle = 6.28318 * static_cast<double>(i) / n;
          poly.outer.push_back({cx + 10 * std::cos(angle) + 0.125,
                                cy + 10 * std::sin(angle) + 0.25});
        }
        g = Geometry::FromPolygon(poly);
        break;
      }
      default: {
        std::vector<Point> pts;
        const size_t n = 1 + rng.Uniform(5);
        for (size_t i = 0; i < n; ++i) {
          pts.push_back(
              {rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)});
        }
        g = Geometry::FromMultiPoint(pts);
        break;
      }
    }
    auto parsed = ParseWkt(ToWkt(g));
    ASSERT_TRUE(parsed.ok()) << ToWkt(g) << " -> " << parsed.status();
    // %.6g costs precision; compare bounds approximately instead of
    // exact equality.
    const auto ob = g.Bounds();
    const auto pb = parsed.value().Bounds();
    EXPECT_NEAR(ob.min_x, pb.min_x, 1e-3);
    EXPECT_NEAR(ob.max_y, pb.max_y, 1e-3);
    EXPECT_EQ(g.kind(), parsed.value().kind());
    EXPECT_EQ(g.NumPoints(), parsed.value().NumPoints());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WktRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace agis::geom
