#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geodb/buffer_pool.h"

namespace agis::geodb {
namespace {

BufferSlice Slice(std::vector<ObjectId> ids, size_t charge) {
  BufferSlice s;
  s.ids = std::move(ids);
  s.charge_bytes = charge;
  return s;
}

/// Hammers one sharded pool with concurrent Get/Put from many threads
/// while another thread repeatedly invalidates a key prefix. Exercises
/// the per-shard locking under ThreadSanitizer; afterwards the pool's
/// accounting must still be internally consistent.
TEST(BufferPoolConcurrency, InvalidatePrefixInterleavedWithGetPut) {
  BufferPool pool(64 * 1024, 8);
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 2000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invalidated{0};

  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      invalidated += pool.InvalidatePrefix("class/Pole/");
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&pool, w] {
      for (int i = 0; i < kOpsPerWorker; ++i) {
        // Half the keys fall under the invalidated prefix, half do not.
        const std::string cls = (i % 2 == 0) ? "Pole" : "Duct";
        const std::string key =
            "class/" + cls + "/" + std::to_string(w) + "/" +
            std::to_string(i % 17);
        if (i % 3 == 0) {
          pool.Put(key, Slice({static_cast<ObjectId>(i)}, 64 + i % 100));
        } else {
          auto hit = pool.Get(key);
          if (hit != nullptr) {
            // A returned slice stays valid even if it is invalidated
            // or evicted concurrently (shared ownership).
            ASSERT_FALSE(hit->ids.empty());
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  stop = true;
  invalidator.join();

  // Post-conditions: the books balance and the survivors are coherent.
  EXPECT_LE(pool.used_bytes(), pool.capacity_bytes());
  const size_t removed = pool.InvalidatePrefix("class/");
  EXPECT_EQ(pool.entry_count(), 0u);
  EXPECT_EQ(pool.used_bytes(), 0u);
  (void)removed;
  const BufferPoolStats stats = pool.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

/// Concurrent hits on a fixed working set must never under- or
/// over-account: with all keys resident and nothing writing, Get from
/// eight threads is a pure read workload on the sharded LRU lists.
TEST(BufferPoolConcurrency, ConcurrentHitsKeepAccountingStable) {
  BufferPool pool(1 << 20, 8);
  constexpr int kKeys = 64;
  for (int k = 0; k < kKeys; ++k) {
    pool.Put("key/" + std::to_string(k), Slice({1, 2, 3}, 128));
  }
  const size_t used_before = pool.used_bytes();

  std::vector<std::thread> threads;
  std::atomic<uint64_t> hits{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &hits, t] {
      for (int i = 0; i < 5000; ++i) {
        const std::string key = "key/" + std::to_string((t * 7 + i) % kKeys);
        if (pool.Get(key) != nullptr) ++hits;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(hits.load(), 8u * 5000u);
  EXPECT_EQ(pool.used_bytes(), used_before);
  EXPECT_EQ(pool.entry_count(), static_cast<size_t>(kKeys));
  EXPECT_EQ(pool.stats().hits, 8u * 5000u);
}

}  // namespace
}  // namespace agis::geodb
