#include "geodb/buffer_pool.h"

#include <gtest/gtest.h>

namespace agis::geodb {
namespace {

BufferSlice Slice(std::vector<ObjectId> ids, size_t charge) {
  BufferSlice s;
  s.ids = std::move(ids);
  s.charge_bytes = charge;
  return s;
}

TEST(BufferPool, MissThenHit) {
  BufferPool pool(1024);
  EXPECT_EQ(pool.Get("k"), nullptr);
  pool.Put("k", Slice({1, 2}, 100));
  auto hit = pool.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ids, (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(pool.stats().HitRatio(), 0.5);
}

TEST(BufferPool, EvictsLeastRecentlyUsed) {
  BufferPool pool(300);
  pool.Put("a", Slice({1}, 100));
  pool.Put("b", Slice({2}, 100));
  pool.Put("c", Slice({3}, 100));
  EXPECT_EQ(pool.entry_count(), 3u);
  // Touch "a" so "b" is the LRU victim.
  EXPECT_NE(pool.Get("a"), nullptr);
  pool.Put("d", Slice({4}, 100));
  EXPECT_NE(pool.Get("a"), nullptr);
  EXPECT_EQ(pool.Get("b"), nullptr);  // Evicted.
  EXPECT_NE(pool.Get("c"), nullptr);
  EXPECT_NE(pool.Get("d"), nullptr);
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST(BufferPool, ReplaceUpdatesCharge) {
  BufferPool pool(300);
  pool.Put("a", Slice({1}, 200));
  EXPECT_EQ(pool.used_bytes(), 200u);
  pool.Put("a", Slice({1, 2}, 100));
  EXPECT_EQ(pool.used_bytes(), 100u);
  EXPECT_EQ(pool.entry_count(), 1u);
  EXPECT_EQ(pool.Get("a")->ids.size(), 2u);
}

TEST(BufferPool, OversizedSlicesAreNotCached) {
  BufferPool pool(100);
  pool.Put("big", Slice({1}, 500));
  EXPECT_EQ(pool.Get("big"), nullptr);
  EXPECT_EQ(pool.used_bytes(), 0u);
}

TEST(BufferPool, InvalidatePrefix) {
  BufferPool pool(10000);
  pool.Put("class/Pole/a", Slice({1}, 10));
  pool.Put("class/Pole/b", Slice({2}, 10));
  pool.Put("class/Duct/a", Slice({3}, 10));
  EXPECT_EQ(pool.InvalidatePrefix("class/Pole/"), 2u);
  EXPECT_EQ(pool.Get("class/Pole/a"), nullptr);
  EXPECT_NE(pool.Get("class/Duct/a"), nullptr);
  EXPECT_EQ(pool.used_bytes(), 10u);
}

TEST(BufferPool, ClearAndStatsReset) {
  BufferPool pool(1000);
  pool.Put("a", Slice({1}, 10));
  (void)pool.Get("a");
  pool.Clear();
  EXPECT_EQ(pool.entry_count(), 0u);
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.stats().hits, 1u);  // Stats survive Clear...
  pool.ResetStats();
  EXPECT_EQ(pool.stats().hits, 0u);  // ...until explicitly reset.
}

TEST(BufferPool, ZeroCapacityNeverCaches) {
  BufferPool pool(0);
  pool.Put("a", Slice({1}, 1));
  EXPECT_EQ(pool.Get("a"), nullptr);
}

TEST(BufferPool, ReplaceAccountsBytesExactly) {
  BufferPool pool(1000);
  pool.Put("a", Slice({1}, 400));
  pool.Put("b", Slice({2}, 400));
  EXPECT_EQ(pool.used_bytes(), 800u);
  // Replacing "a" releases its old charge before the new one is added:
  // 400 (b) + 500 (new a) = 900 fits, so nothing may be evicted. If
  // the old and new charge ever coexisted, "b" would be evicted here.
  pool.Put("a", Slice({1, 1}, 500));
  EXPECT_EQ(pool.used_bytes(), 900u);
  EXPECT_EQ(pool.entry_count(), 2u);
  EXPECT_NE(pool.Get("b"), nullptr);
  EXPECT_EQ(pool.stats().evictions, 0u);
}

TEST(BufferPool, ReplaceWithOversizedSliceDropsTheEntry) {
  BufferPool pool(300);
  pool.Put("a", Slice({1}, 100));
  pool.Put("a", Slice({1, 2}, 999));  // Larger than the whole budget.
  EXPECT_EQ(pool.Get("a"), nullptr);
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.entry_count(), 0u);
}

TEST(BufferPool, ReplacementRefreshesLruPosition) {
  BufferPool pool(300);
  pool.Put("a", Slice({1}, 100));
  pool.Put("b", Slice({2}, 100));
  pool.Put("c", Slice({3}, 100));
  // Re-Put "a": it must move to the front of the LRU list, so the
  // next eviction victim is "b", not "a".
  pool.Put("a", Slice({1, 1}, 100));
  pool.Put("d", Slice({4}, 100));
  EXPECT_NE(pool.Get("a"), nullptr);
  EXPECT_EQ(pool.Get("b"), nullptr);  // Evicted.
  EXPECT_NE(pool.Get("c"), nullptr);
  EXPECT_NE(pool.Get("d"), nullptr);
}

TEST(BufferPool, ShardsSplitTheBudgetAndTheKeySpace) {
  BufferPool pool(800, 4);
  EXPECT_EQ(pool.num_shards(), 4u);
  EXPECT_EQ(pool.capacity_bytes(), 800u);
  // A slice above the per-shard budget (200) is never cached even
  // though it is below the total budget.
  pool.Put("big", Slice({1}, 300));
  EXPECT_EQ(pool.Get("big"), nullptr);
  pool.Put("small", Slice({2}, 150));
  EXPECT_NE(pool.Get("small"), nullptr);
  // ShardOf is a pure function of the key.
  EXPECT_EQ(pool.ShardOf("k1"), pool.ShardOf("k1"));
  EXPECT_LT(pool.ShardOf("k1"), 4u);
  // Single-shard pools route everything to shard 0.
  BufferPool single(100);
  EXPECT_EQ(single.ShardOf("anything"), 0u);
}

TEST(BufferPool, ShardCountIsClampedToAtLeastOne) {
  BufferPool pool(100, 0);
  EXPECT_EQ(pool.num_shards(), 1u);
  pool.Put("a", Slice({1}, 50));
  EXPECT_NE(pool.Get("a"), nullptr);
}

}  // namespace
}  // namespace agis::geodb
