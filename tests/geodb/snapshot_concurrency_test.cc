// Concurrency suite for the versioned read path (run under TSan in
// CI): writers churning inserts/updates/deletes while readers pin
// snapshots and demand repeatable scans and stable pointers.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "geodb/database.h"
#include "geodb/snapshot.h"
#include "geom/geometry.h"

namespace agis::geodb {
namespace {

geom::Geometry PointGeom(double x, double y) {
  return geom::Geometry::FromPoint({x, y});
}

class SnapshotConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GeoDatabase>("concurrency_schema");
    ClassDef pole("Pole", "");
    ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
  }

  ObjectId InsertPole(double x, double y, int64_t type) {
    auto id = db_->Insert(
        "Pole", {{"pole_type", Value::Int(type)},
                 {"pole_location", Value::MakeGeometry(PointGeom(x, y))}});
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? id.value() : 0;
  }

  std::unique_ptr<GeoDatabase> db_;
};

TEST_F(SnapshotConcurrencyTest, ScansAreRepeatableWhileWritersChurn) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kObjects = 64;
  constexpr int kReaderRounds = 40;

  std::vector<ObjectId> ids;
  for (int i = 0; i < kObjects; ++i) {
    ids.push_back(InsertPole(i % 10, i / 10, /*type=*/0));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      uint64_t step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const ObjectId id = ids[(w * 31 + step * 7) % ids.size()];
        switch (step % 3) {
          case 0:
            (void)db_->Update(id, "pole_type",
                              Value::Int(static_cast<int64_t>(step)));
            break;
          case 1:
            (void)db_->Update(
                id, "pole_location",
                Value::MakeGeometry(PointGeom((step * 3) % 20, w)));
            break;
          default: {
            // Delete one id and put it back via the bulk-load path so
            // the extent's dead-list and resurrection logic get
            // exercised under load.
            const ObjectId victim = ids[(w + step) % ids.size()];
            if (db_->Delete(victim).ok()) {
              ObjectInstance obj(victim, "Pole");
              obj.Set("pole_type", Value::Int(-1));
              obj.Set("pole_location", Value::MakeGeometry(PointGeom(1, 1)));
              (void)db_->RestoreObject(std::move(obj));
            }
            break;
          }
        }
        ++step;
      }
    });
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      for (int round = 0; round < kReaderRounds; ++round) {
        const Snapshot snap = db_->OpenSnapshot();
        auto first = db_->ScanExtentAt(snap, "Pole");
        if (!first.ok()) {
          ++failures;
          continue;
        }
        // A pinned snapshot is a fixed point: rescanning must return
        // exactly the same membership no matter what writers do.
        auto second = db_->ScanExtentAt(snap, "Pole");
        if (!second.ok() || *first != *second) ++failures;

        // Every member is readable, twice, with a stable pointer and
        // stable values.
        for (size_t i = 0; i < first->size(); i += 7) {
          const ObjectId id = (*first)[i];
          const ObjectInstance* once = db_->FindObjectAt(snap, id);
          const ObjectInstance* again = db_->FindObjectAt(snap, id);
          if (once == nullptr || once != again ||
              once->Get("pole_type").is_null()) {
            ++failures;
            continue;
          }
          // Dereference after more writes may have landed: the pin
          // keeps the version alive (ASan/TSan verify liveness).
          if (once->id() != id) ++failures;
        }
      }
    });
  }

  for (auto& t : readers) t.join();
  stop.store(true);
  for (auto& t : writers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db_->PinnedSnapshotCount(), 0u);
  db_->ReclaimVersions();
  EXPECT_EQ(db_->TotalVersionCount(), db_->NumObjects());
}

TEST_F(SnapshotConcurrencyTest, ParallelGetClassNeverSeesTornWrites) {
  // Small partitions force the residual scan across the pool, so the
  // partitioned path runs while writers churn; the internal snapshot
  // pin must keep every candidate version alive and coherent.
  DatabaseOptions options;
  options.parallel_scan_partition = 8;
  auto db = std::make_unique<GeoDatabase>("parallel_schema", options);
  ClassDef pole("Pole", "");
  ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
  ASSERT_TRUE(pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
  ASSERT_TRUE(db->RegisterClass(std::move(pole)).ok());

  std::vector<ObjectId> ids;
  for (int i = 0; i < 128; ++i) {
    auto id = db->Insert(
        "Pole",
        {{"pole_type", Value::Int(0)},
         {"pole_location", Value::MakeGeometry(PointGeom(i % 16, i / 16))}});
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  agis::ThreadPool pool(2);
  db->set_query_pool(&pool);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Writers flip pole_type between two even values; a torn read would
  // surface as a predicate mismatch or a dangling candidate.
  std::thread writer([&] {
    uint64_t step = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)db->Update(ids[step % ids.size()], "pole_type",
                       Value::Int((step % 2) * 2));
      ++step;
    }
  });

  GetClassOptions query;
  query.predicates.push_back({"pole_type", CompareOp::kGe, Value::Int(0)});
  query.use_buffer_pool = false;
  for (int round = 0; round < 30; ++round) {
    auto result = db->GetClass("Pole", query);
    if (!result.ok()) {
      ++failures;
      continue;
    }
    // pole_type is always >= 0, so every live object qualifies.
    if (result->ids.size() != ids.size()) ++failures;
  }

  stop.store(true);
  writer.join();
  db->set_query_pool(nullptr);
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SnapshotConcurrencyTest, PinChurnLeavesNoResidue) {
  const ObjectId a = InsertPole(1, 1, /*type=*/0);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t step = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)db_->Update(a, "pole_type", Value::Int(static_cast<int64_t>(step)));
      ++step;
    }
  });

  std::vector<std::thread> pinners;
  for (int t = 0; t < 3; ++t) {
    pinners.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        Snapshot snap = db_->OpenSnapshot();
        const ObjectInstance* obj = db_->FindObjectAt(snap, a);
        if (obj != nullptr) {
          // Hold the pointer across the release boundary of OTHER
          // snapshots, never past our own.
          (void)obj->Get("pole_type");
        }
        if (i % 2 == 0) snap.Release();  // Other half released by RAII.
      }
    });
  }

  for (auto& t : pinners) t.join();
  stop.store(true);
  writer.join();

  EXPECT_EQ(db_->PinnedSnapshotCount(), 0u);
  db_->ReclaimVersions();
  EXPECT_EQ(db_->TotalVersionCount(), 1u);
}

}  // namespace
}  // namespace agis::geodb
