#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "base/strutil.h"
#include "geodb/buffer_pool.h"
#include "geodb/database.h"
#include "geom/geometry.h"

namespace agis::geodb {
namespace {

geom::Geometry PointGeom(double x, double y) {
  return geom::Geometry::FromPoint({x, y});
}

BufferSlice Slice(std::vector<ObjectId> ids, size_t charge) {
  BufferSlice s;
  s.ids = std::move(ids);
  s.charge_bytes = charge;
  return s;
}

// ---- BufferPool: sorted key map + selective invalidation ----------------

TEST(BufferPoolInvalidation, PrefixStopsAtTheKeyBoundary) {
  BufferPool pool(1 << 20, /*shards=*/1);
  pool.Put("class/Pole/a", Slice({1}, 100));
  pool.Put("class/Pole/b", Slice({2}, 100));
  pool.Put("class/PoleX/a", Slice({3}, 100));  // Shares a string prefix.
  pool.Put("class/Duct/a", Slice({4}, 100));
  EXPECT_EQ(pool.InvalidatePrefix("class/Pole/"), 2u);
  EXPECT_EQ(pool.Get("class/Pole/a"), nullptr);
  EXPECT_EQ(pool.Get("class/Pole/b"), nullptr);
  EXPECT_NE(pool.Get("class/PoleX/a"), nullptr);
  EXPECT_NE(pool.Get("class/Duct/a"), nullptr);
}

TEST(BufferPoolInvalidation, MatchingDropsSelectivelyAndCountsSurvivals) {
  BufferPool pool(1 << 20, /*shards=*/1);
  pool.Put("class/Pole/a", Slice({1, 2, 3}, 100));
  pool.Put("class/Pole/b", Slice({4, 5}, 100));
  pool.Put("class/Pole/c", Slice({2, 6}, 100));
  const size_t removed = pool.InvalidateMatching(
      "class/Pole/",
      [](const BufferSlice& slice) { return slice.Contains(2); });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(pool.Get("class/Pole/a"), nullptr);
  EXPECT_NE(pool.Get("class/Pole/b"), nullptr);
  EXPECT_EQ(pool.Get("class/Pole/c"), nullptr);
  EXPECT_EQ(pool.stats().invalidated, 2u);
  EXPECT_EQ(pool.stats().invalidation_survivals, 1u);
}

TEST(BufferPoolInvalidation, InvalidationKeepsByteAccountingExact) {
  BufferPool pool(1 << 20, /*shards=*/1);
  pool.Put("class/Pole/a", Slice({1}, 300));
  pool.Put("class/Pole/b", Slice({2}, 500));
  pool.Put("class/Duct/a", Slice({3}, 700));
  ASSERT_EQ(pool.used_bytes(), 1500u);
  pool.InvalidateMatching("class/Pole/", [](const BufferSlice& slice) {
    return slice.Contains(2);
  });
  EXPECT_EQ(pool.used_bytes(), 1000u);
  EXPECT_EQ(pool.entry_count(), 2u);
  pool.InvalidatePrefix("class/");
  EXPECT_EQ(pool.used_bytes(), 0u);
  EXPECT_EQ(pool.entry_count(), 0u);
}

TEST(BufferPoolInvalidation, SliceContainsUsesTheSortedIds) {
  BufferSlice s = Slice({2, 5, 9, 40}, 10);
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(40));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_FALSE(s.Contains(10));
}

// Sorted-map regression: a prefix sweep touches only the matching key
// range, so sweeping one class's keys leaves the (much larger) rest of
// the pool alone — and keeps their LRU order intact.
TEST(BufferPoolInvalidation, PrefixSweepDoesNotDisturbOtherEntries) {
  BufferPool pool(10000, /*shards=*/1);
  for (int i = 0; i < 50; ++i) {
    pool.Put(agis::StrCat("class/Other/", i), Slice({ObjectId(i + 1)}, 100));
  }
  pool.Put("class/Pole/hot", Slice({99}, 100));
  ASSERT_EQ(pool.entry_count(), 51u);
  EXPECT_EQ(pool.InvalidatePrefix("class/Pole/"), 1u);
  EXPECT_EQ(pool.entry_count(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(pool.Get(agis::StrCat("class/Other/", i)), nullptr) << i;
  }
}

// ---- GeoDatabase: per-object write invalidation -------------------------

class PerObjectInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GeoDatabase>("test_schema");
    ClassDef pole("Pole", "");
    ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
    ClassDef special("SpecialPole", "");
    special.set_parent("Pole");
    ASSERT_TRUE(db_->RegisterClass(std::move(special)).ok());
    ClassDef duct("Duct", "");
    ASSERT_TRUE(duct.AddAttribute(AttributeDef::Geometry("duct_path")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(duct)).ok());
  }

  ObjectId InsertPole(const std::string& cls, double x, double y,
                      int64_t type = 1) {
    auto id = db_->Insert(cls, {{"pole_type", Value::Int(type)},
                                {"pole_location",
                                 Value::MakeGeometry(PointGeom(x, y))}});
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? id.value() : 0;
  }

  /// Runs the query once to warm the cache, then reports whether a
  /// second run still hits it.
  bool CachedAfter(const GetClassOptions& options,
                   const std::function<void()>& write,
                   const std::string& cls = "Pole") {
    auto warm = db_->GetClass(cls, options);
    EXPECT_TRUE(warm.ok()) << warm.status();
    write();
    auto again = db_->GetClass(cls, options);
    EXPECT_TRUE(again.ok()) << again.status();
    return again.ok() && again.value().from_cache;
  }

  std::unique_ptr<GeoDatabase> db_;
};

TEST_F(PerObjectInvalidationTest, UnrelatedClassWriteKeepsTheSlice) {
  InsertPole("Pole", 1, 1);
  EXPECT_TRUE(CachedAfter({}, [this] {
    ASSERT_TRUE(db_->Insert("Duct", {{"duct_path", Value::MakeGeometry(
                                                       PointGeom(5, 5))}})
                    .ok());
  }));
}

TEST_F(PerObjectInvalidationTest, WindowedSliceSurvivesWritesElsewhere) {
  const ObjectId inside = InsertPole("Pole", 1, 1);
  const ObjectId outside = InsertPole("Pole", 100, 100);
  GetClassOptions windowed;
  windowed.window = geom::BoundingBox(0, 0, 10, 10);

  // Geometry update far from the window: the slice cannot change.
  EXPECT_TRUE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Update(outside, "pole_location",
                            Value::MakeGeometry(PointGeom(120, 120)))
                    .ok());
  }));
  // Non-geometry update of an object outside the slice: still safe.
  EXPECT_TRUE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Update(outside, "pole_type", Value::Int(7)).ok());
  }));
  // Geometry update of a member: must drop.
  EXPECT_FALSE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Update(inside, "pole_location",
                            Value::MakeGeometry(PointGeom(2, 2)))
                    .ok());
  }));
  // Geometry moving INTO the window from outside: must drop.
  EXPECT_FALSE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Update(outside, "pole_location",
                            Value::MakeGeometry(PointGeom(3, 3)))
                    .ok());
  }));
}

TEST_F(PerObjectInvalidationTest, InsertRespectsTheWindow) {
  InsertPole("Pole", 1, 1);
  GetClassOptions windowed;
  windowed.window = geom::BoundingBox(0, 0, 10, 10);
  // Insert landing outside the window keeps the slice...
  EXPECT_TRUE(
      CachedAfter(windowed, [this] { InsertPole("Pole", 200, 200); }));
  // ...inside drops it; and the unwindowed full-extent slice always
  // drops on insert (its membership just grew).
  EXPECT_FALSE(CachedAfter(windowed, [this] { InsertPole("Pole", 5, 5); }));
  EXPECT_FALSE(CachedAfter({}, [this] { InsertPole("Pole", 200, 200); }));
}

TEST_F(PerObjectInvalidationTest, PredicateSliceDropsOnMatchingAttribute) {
  const ObjectId a = InsertPole("Pole", 1, 1, /*type=*/1);
  InsertPole("Pole", 2, 2, /*type=*/2);
  GetClassOptions typed;
  AttrPredicate p;
  p.attribute = "pole_type";
  p.op = CompareOp::kGe;
  p.operand = Value::Int(2);
  typed.predicates.push_back(p);

  // `a` is not in the slice (type 1 < 2), but the update touches the
  // predicate attribute, so membership may have changed: drop.
  EXPECT_FALSE(CachedAfter(typed, [&] {
    ASSERT_TRUE(db_->Update(a, "pole_type", Value::Int(9)).ok());
  }));
  // A geometry move of a NON-member (the first sub-case promoted `a`
  // into the slice, so use a fresh type-1 pole): the slice has no
  // window and no spatial filter, so the move cannot change it.
  const ObjectId c = InsertPole("Pole", 3, 3, /*type=*/1);
  EXPECT_TRUE(CachedAfter(typed, [&] {
    ASSERT_TRUE(db_->Update(c, "pole_location",
                            Value::MakeGeometry(PointGeom(4, 4)))
                    .ok());
  }));
}

TEST_F(PerObjectInvalidationTest, DeleteDropsOnlySlicesHoldingTheObject) {
  const ObjectId a = InsertPole("Pole", 1, 1);
  const ObjectId b = InsertPole("Pole", 100, 100);
  GetClassOptions windowed;
  windowed.window = geom::BoundingBox(0, 0, 10, 10);  // Holds only a.
  EXPECT_TRUE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Delete(b).ok());
  }));
  EXPECT_FALSE(CachedAfter(windowed, [&] {
    ASSERT_TRUE(db_->Delete(a).ok());
  }));
}

TEST_F(PerObjectInvalidationTest, SubclassWritesReachAncestorSlices) {
  InsertPole("Pole", 1, 1);
  const ObjectId special = InsertPole("SpecialPole", 2, 2);
  GetClassOptions with_subs;
  with_subs.include_subclasses = true;
  // The parent slice includes the subclass object: its update drops it.
  EXPECT_FALSE(CachedAfter(with_subs, [&] {
    ASSERT_TRUE(db_->Update(special, "pole_type", Value::Int(3)).ok());
  }));
  // Without include_subclasses the parent slice cannot contain
  // subclass members; subclass writes leave it alone.
  EXPECT_TRUE(CachedAfter({}, [&] {
    ASSERT_TRUE(db_->Update(special, "pole_type", Value::Int(4)).ok());
  }));
}

TEST_F(PerObjectInvalidationTest, LegacyFlagRestoresBlanketDrops) {
  DatabaseOptions legacy;
  legacy.legacy_class_prefix_invalidation = true;
  auto db = std::make_unique<GeoDatabase>("legacy_schema", legacy);
  ClassDef pole("Pole", "");
  ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
  ASSERT_TRUE(
      pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
  ASSERT_TRUE(db->RegisterClass(std::move(pole)).ok());
  auto a = db->Insert("Pole", {{"pole_type", Value::Int(1)},
                               {"pole_location",
                                Value::MakeGeometry(PointGeom(100, 100))}});
  ASSERT_TRUE(a.ok());

  GetClassOptions windowed;
  windowed.window = geom::BoundingBox(0, 0, 10, 10);  // Excludes a.
  ASSERT_TRUE(db->GetClass("Pole", windowed).ok());
  // A write the window can't see still nukes the whole class prefix.
  ASSERT_TRUE(db->Update(a.value(), "pole_type", Value::Int(2)).ok());
  auto again = db->GetClass("Pole", windowed);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().from_cache);
}

}  // namespace
}  // namespace agis::geodb
