#include "geodb/value.h"

#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace agis::geodb {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
  EXPECT_EQ(v.ToDisplayString(), "null");
}

TEST(Value, ScalarKindsAndAccessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int(-7).int_value(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value::Bool(false).ToDisplayString(), "false");
  EXPECT_EQ(Value::Int(42).ToDisplayString(), "42");
  EXPECT_EQ(Value::Double(3.5).ToDisplayString(), "3.5");
  EXPECT_EQ(Value::String("wood").ToDisplayString(), "wood");
  Blob b;
  b.format = "pbm";
  b.bytes = {1, 2, 3};
  EXPECT_EQ(Value::MakeBlob(b).ToDisplayString(), "<blob pbm 3B>");
  EXPECT_EQ(Value::Ref(7, "Supplier").ToDisplayString(), "Supplier#7");
  EXPECT_EQ(
      Value::MakeGeometry(geom::Geometry::FromPoint({1, 2})).ToDisplayString(),
      "POINT (1 2)");
}

TEST(Value, TupleDisplayAndFieldAccess) {
  const Value v = Value::MakeTuple({{"material", Value::String("wood")},
                                    {"height", Value::Double(9.5)}});
  EXPECT_EQ(v.ToDisplayString(), "(material: wood, height: 9.5)");
  EXPECT_EQ(v.TupleField_("material").value().string_value(), "wood");
  EXPECT_TRUE(v.TupleField_("nope").status().IsNotFound());
  EXPECT_TRUE(Value::Int(1).TupleField_("x").status().IsInvalidArgument());
}

TEST(Value, NestedTuplesAndLists) {
  const Value inner = Value::MakeTuple({{"x", Value::Int(1)}});
  const Value v = Value::MakeList({inner, Value::Int(2)});
  EXPECT_EQ(v.ToDisplayString(), "[(x: 1), 2]");
  EXPECT_EQ(v.list_value().size(), 2u);
}

TEST(Value, AsDoubleCoercesNumerics) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble().value(), 2.5);
  EXPECT_TRUE(Value::String("x").AsDouble().status().IsInvalidArgument());
}

TEST(Value, EqualityAcrossKinds) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.0));  // Distinct kinds.
  EXPECT_EQ(Value(), Value());
  EXPECT_EQ(Value::Ref(1, "A"), Value::Ref(1, "A"));
  EXPECT_FALSE(Value::Ref(1, "A") == Value::Ref(1, "B"));
}

TEST(CompareValues, NumericCrossKind) {
  EXPECT_EQ(CompareValues(Value::Int(2), Value::Double(2.0)).value(), 0);
  EXPECT_LT(CompareValues(Value::Int(1), Value::Double(1.5)).value(), 0);
  EXPECT_GT(CompareValues(Value::Double(3.5), Value::Int(3)).value(), 0);
}

TEST(CompareValues, StringsAndBools) {
  EXPECT_LT(CompareValues(Value::String("a"), Value::String("b")).value(), 0);
  EXPECT_EQ(CompareValues(Value::String("x"), Value::String("x")).value(), 0);
  EXPECT_GT(CompareValues(Value::Bool(true), Value::Bool(false)).value(), 0);
}

TEST(CompareValues, IncomparableKindsError) {
  EXPECT_TRUE(CompareValues(Value::Int(1), Value::String("1"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(CompareValues(Value::Ref(1, "A"), Value::Ref(1, "A"))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace agis::geodb
