#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "geodb/database.h"
#include "geodb/persist.h"
#include "geom/geometry.h"

namespace agis::geodb {
namespace {

geom::Geometry PointGeom(double x, double y) {
  return geom::Geometry::FromPoint({x, y});
}

ClassDef PoleClass() {
  ClassDef pole("Pole", "");
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::String("owner")).ok());
  EXPECT_TRUE(pole.AddAttribute(AttributeDef::Geometry("loc")).ok());
  return pole;
}

void Populate(GeoDatabase* db, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(db->Insert("Pole",
                           {{"pole_type", Value::Int(i % 10)},
                            {"owner", Value::String(i % 3 == 0 ? "city"
                                                                : "utility")},
                            {"loc", Value::MakeGeometry(
                                        PointGeom(i % 100, i / 100))}})
                    .ok());
  }
}

GetClassOptions TypeEq(int64_t t) {
  GetClassOptions options;
  options.use_buffer_pool = false;
  options.predicates.push_back(
      AttrPredicate{"pole_type", CompareOp::kEq, Value::Int(t)});
  return options;
}

TEST(QueryPlan, IndexedAndScanResultsAgree) {
  DatabaseOptions indexed_opts;
  indexed_opts.auto_attribute_indexes = true;
  DatabaseOptions scan_opts;
  scan_opts.auto_attribute_indexes = false;
  GeoDatabase indexed("s", indexed_opts);
  GeoDatabase scan("s", scan_opts);
  ASSERT_TRUE(indexed.RegisterClass(PoleClass()).ok());
  ASSERT_TRUE(scan.RegisterClass(PoleClass()).ok());
  Populate(&indexed, 500);
  Populate(&scan, 500);

  std::vector<GetClassOptions> queries;
  queries.push_back(TypeEq(3));
  {
    GetClassOptions q;  // Range + string predicate.
    q.use_buffer_pool = false;
    q.predicates.push_back(
        AttrPredicate{"pole_type", CompareOp::kGe, Value::Int(7)});
    q.predicates.push_back(
        AttrPredicate{"owner", CompareOp::kEq, Value::String("city")});
    queries.push_back(q);
  }
  {
    GetClassOptions q;  // Spatial window + predicate intersection.
    q.use_buffer_pool = false;
    q.window = geom::BoundingBox(10, 0, 40, 3);
    q.predicates.push_back(
        AttrPredicate{"pole_type", CompareOp::kNe, Value::Int(0)});
    queries.push_back(q);
  }
  {
    GetClassOptions q;  // Unindexable op mixes with indexable ones.
    q.use_buffer_pool = false;
    q.predicates.push_back(
        AttrPredicate{"owner", CompareOp::kContains, Value::String("cit")});
    q.predicates.push_back(
        AttrPredicate{"pole_type", CompareOp::kLt, Value::Int(5)});
    queries.push_back(q);
  }

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE(qi);
    auto a = indexed.GetClass("Pole", queries[qi]);
    auto b = scan.GetClass("Pole", queries[qi]);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(std::set<ObjectId>(a.value().ids.begin(), a.value().ids.end()),
              std::set<ObjectId>(b.value().ids.begin(), b.value().ids.end()));
  }
  EXPECT_GT(indexed.stats().attr_index_queries, 0u);
  EXPECT_EQ(indexed.stats().full_extent_scans, 0u);
  EXPECT_GT(scan.stats().full_extent_scans, 0u);
  EXPECT_EQ(scan.stats().attr_index_queries, 0u);
}

TEST(QueryPlan, PlannerCountersDistinguishAccessPaths) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 50);

  GetClassOptions everything;
  everything.use_buffer_pool = false;
  ASSERT_TRUE(db.GetClass("Pole", everything).ok());
  EXPECT_EQ(db.stats().full_extent_scans, 1u);

  ASSERT_TRUE(db.GetClass("Pole", TypeEq(1)).ok());
  EXPECT_EQ(db.stats().attr_index_queries, 1u);

  GetClassOptions windowed;
  windowed.use_buffer_pool = false;
  windowed.window = geom::BoundingBox(0, 0, 5, 5);
  ASSERT_TRUE(db.GetClass("Pole", windowed).ok());
  EXPECT_EQ(db.stats().spatial_index_queries, 1u);
  EXPECT_EQ(db.stats().full_extent_scans, 1u);  // Unchanged.
}

TEST(QueryPlan, SelectivityCutoffSkipsUnselectivePaths) {
  GeoDatabase db("s");  // Default cutoff 0.5, auto indexes on.
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 500);

  // pole_type==3 matches 10% (selective); owner=="utility" matches
  // ~2/3 of the extent — above the cutoff, so with the selective path
  // already materialized the planner must leave it to the residual.
  GetClassOptions q = TypeEq(3);
  q.predicates.push_back(
      AttrPredicate{"owner", CompareOp::kEq, Value::String("utility")});
  const auto planned = db.GetClass("Pole", q);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(db.stats().index_paths_skipped, 1u);
  EXPECT_GT(db.stats().attr_index_queries, 0u);
  EXPECT_EQ(db.stats().full_extent_scans, 0u);

  // Same query without the cutoff (1.0 = always materialize): the
  // results are identical — the cutoff changes cost, never answers.
  DatabaseOptions always;
  always.index_path_selectivity_cutoff = 1.0;
  GeoDatabase greedy("s", always);
  ASSERT_TRUE(greedy.RegisterClass(PoleClass()).ok());
  Populate(&greedy, 500);
  const auto materialized = greedy.GetClass("Pole", q);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(greedy.stats().index_paths_skipped, 0u);
  EXPECT_EQ(std::set<ObjectId>(planned.value().ids.begin(),
                               planned.value().ids.end()),
            std::set<ObjectId>(materialized.value().ids.begin(),
                               materialized.value().ids.end()));

  // An unselective predicate standing alone still beats a full scan:
  // it is materialized as the sole path, not skipped.
  GetClassOptions lone;
  lone.use_buffer_pool = false;
  lone.predicates.push_back(
      AttrPredicate{"owner", CompareOp::kEq, Value::String("utility")});
  const uint64_t skipped_before = db.stats().index_paths_skipped;
  ASSERT_TRUE(db.GetClass("Pole", lone).ok());
  EXPECT_EQ(db.stats().index_paths_skipped, skipped_before);
  EXPECT_EQ(db.stats().full_extent_scans, 0u);
}

TEST(QueryPlan, CreateAttributeIndexBackfillsAndValidates) {
  DatabaseOptions opts;
  opts.auto_attribute_indexes = false;
  GeoDatabase db("s", opts);
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 100);
  EXPECT_FALSE(db.HasAttributeIndex("Pole", "pole_type"));

  ASSERT_TRUE(db.CreateAttributeIndex("Pole", "pole_type").ok());
  EXPECT_TRUE(db.HasAttributeIndex("Pole", "pole_type"));
  // Idempotent.
  ASSERT_TRUE(db.CreateAttributeIndex("Pole", "pole_type").ok());

  // The backfilled index answers immediately, and the planner uses it.
  auto r = db.GetClass("Pole", TypeEq(4));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 10u);
  EXPECT_EQ(db.stats().attr_index_queries, 1u);

  EXPECT_TRUE(db.CreateAttributeIndex("Pole", "loc")
                  .IsInvalidArgument());  // Geometry is not indexable.
  EXPECT_TRUE(db.CreateAttributeIndex("Pole", "bogus").IsNotFound());
  EXPECT_TRUE(db.CreateAttributeIndex("Nope", "x").IsNotFound());
}

TEST(QueryPlan, WritesKeepAttributeIndexesCurrent) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  auto id = db.Insert("Pole", {{"pole_type", Value::Int(1)},
                               {"loc", Value::MakeGeometry(PointGeom(1, 1))}});
  ASSERT_TRUE(id.ok());

  EXPECT_EQ(db.GetClass("Pole", TypeEq(1)).value().ids.size(), 1u);
  ASSERT_TRUE(db.Update(id.value(), "pole_type", Value::Int(2)).ok());
  EXPECT_TRUE(db.GetClass("Pole", TypeEq(1)).value().ids.empty());
  EXPECT_EQ(db.GetClass("Pole", TypeEq(2)).value().ids.size(), 1u);
  ASSERT_TRUE(db.Delete(id.value()).ok());
  EXPECT_TRUE(db.GetClass("Pole", TypeEq(2)).value().ids.empty());
}

TEST(QueryPlan, SubclassExtentsUseTheirOwnIndexes) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  ClassDef steel("SteelPole", "");
  steel.set_parent("Pole");
  ASSERT_TRUE(db.RegisterClass(std::move(steel)).ok());
  ASSERT_TRUE(db.Insert("Pole", {{"pole_type", Value::Int(1)}}).ok());
  ASSERT_TRUE(db.Insert("SteelPole", {{"pole_type", Value::Int(1)}}).ok());

  GetClassOptions q = TypeEq(1);
  q.include_subclasses = true;
  EXPECT_EQ(db.GetClass("Pole", q).value().ids.size(), 2u);
  q.include_subclasses = false;
  EXPECT_EQ(db.GetClass("Pole", q).value().ids.size(), 1u);
}

TEST(QueryPlan, ParallelResidualScanMatchesSequential) {
  DatabaseOptions opts;
  opts.auto_attribute_indexes = false;  // Force residual-only scans.
  opts.parallel_scan_partition = 64;    // Small, to exercise chunking.
  GeoDatabase db("s", opts);
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 1000);

  GetClassOptions q;
  q.use_buffer_pool = false;
  q.predicates.push_back(
      AttrPredicate{"pole_type", CompareOp::kLt, Value::Int(4)});
  const auto sequential = db.GetClass("Pole", q);
  ASSERT_TRUE(sequential.ok());
  EXPECT_EQ(db.stats().parallel_scans, 0u);

  agis::ThreadPool pool(4);
  db.set_query_pool(&pool);
  const auto parallel = db.GetClass("Pole", q);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value().ids, sequential.value().ids);  // Same order.
  EXPECT_EQ(db.stats().parallel_scans, 1u);

  // A limit forces the early-exit sequential path even with a pool.
  GetClassOptions limited = q;
  limited.limit = 5;
  EXPECT_EQ(db.GetClass("Pole", limited).value().ids.size(), 5u);
  EXPECT_EQ(db.stats().parallel_scans, 1u);
  db.set_query_pool(nullptr);
}

TEST(QueryPlan, ConcurrentReadersWithWriterStayCoherent) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 200);

  // Readers run a FIXED number of queries rather than spinning on a
  // stop flag: glibc's rwlock is reader-preferring, so perpetually
  // re-acquiring readers could starve the writer indefinitely.
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&db, &reads, t] {
      GetClassOptions q = TypeEq(t % 10);
      for (int i = 0; i < 300; ++i) {
        auto r = db.GetClass("Pole", q);
        ASSERT_TRUE(r.ok());
        // Ids are inspected, but instances are NOT dereferenced:
        // pointers from FindObject/GetValue are only valid until the
        // next write (see the thread-safety contract), and a writer is
        // running. Returned id lists must always be internally sane.
        ASSERT_LE(r.value().ids.size(), db.ExtentSize("Pole"));
        ++reads;
      }
    });
  }

  for (int i = 0; i < 100; ++i) {
    auto id = db.Insert("Pole",
                        {{"pole_type", Value::Int(i % 10)},
                         {"loc", Value::MakeGeometry(PointGeom(i, i))}});
    ASSERT_TRUE(id.ok());
    if (i % 3 == 0) {
      ASSERT_TRUE(db.Update(id.value(), "pole_type", Value::Int(99)).ok());
    }
    if (i % 7 == 0) {
      ASSERT_TRUE(db.Delete(id.value()).ok());
    }
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(reads.load(), 8u * 300u);

  // Quiescent check: indexes agree with a full rescan.
  GetClassOptions q = TypeEq(99);
  auto with_index = db.GetClass("Pole", q);
  ASSERT_TRUE(with_index.ok());
  size_t expected = 0;
  const std::vector<ObjectId> all_ids = db.ScanExtent("Pole").value();
  const Snapshot snap = db.OpenSnapshot();
  for (ObjectId id : all_ids) {
    if (db.FindObjectAt(snap, id)->Get("pole_type") == Value::Int(99)) {
      ++expected;
    }
  }
  EXPECT_EQ(with_index.value().ids.size(), expected);
}

TEST(QueryPlan, BulkRestoreRebuildsIndexesViaStr) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 300);
  const std::string saved = SaveDatabaseToString(db);

  auto loaded = LoadDatabaseFromString(saved);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  GeoDatabase& db2 = *loaded.value();
  EXPECT_EQ(db2.NumObjects(), 300u);
  EXPECT_GT(db2.stats().bulk_index_builds, 0u);
  // stats() returns by value: keep the copy alive past the iterator.
  const DatabaseStats stats = db2.stats();
  const auto quality = stats.index_quality.find("Pole");
  ASSERT_NE(quality, stats.index_quality.end());
  EXPECT_GT(quality->second.avg_fill, 0.5);

  // Spatial and attribute queries work identically on the restored db.
  GetClassOptions windowed;
  windowed.use_buffer_pool = false;
  windowed.window = geom::BoundingBox(0, 0, 20, 1);
  EXPECT_EQ(db2.GetClass("Pole", windowed).value().ids.size(),
            db.GetClass("Pole", windowed).value().ids.size());
  EXPECT_EQ(db2.GetClass("Pole", TypeEq(5)).value().ids.size(),
            db.GetClass("Pole", TypeEq(5)).value().ids.size());
}

TEST(QueryPlan, RebuildSpatialIndexesRefreshesQuality) {
  GeoDatabase db("s");
  ASSERT_TRUE(db.RegisterClass(PoleClass()).ok());
  Populate(&db, 400);
  EXPECT_EQ(db.stats().index_quality.count("Pole"), 0u);
  db.RebuildSpatialIndexes();
  ASSERT_EQ(db.stats().index_quality.count("Pole"), 1u);
  EXPECT_GT(db.stats().index_quality.at("Pole").avg_fill, 0.8);

  GetClassOptions windowed;
  windowed.use_buffer_pool = false;
  windowed.window = geom::BoundingBox(0, 0, 50, 2);
  const size_t hits = db.GetClass("Pole", windowed).value().ids.size();
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace agis::geodb
