// Tests for the versioned read path: snapshot visibility semantics,
// pointer stability across writes (the dangling-pointer regression
// the snapshot API retires), ScanExtentAt membership/window rules,
// epoch-based reclamation accounting, and snapshot handle lifecycle.

#include "geodb/snapshot.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "geodb/database.h"
#include "geom/geometry.h"

// These tests contrast the deprecated current-read calls against
// snapshot reads on purpose — the contrast *is* the semantics under
// test.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace agis::geodb {
namespace {

geom::Geometry PointGeom(double x, double y) {
  return geom::Geometry::FromPoint({x, y});
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GeoDatabase>("snapshot_schema");
    ClassDef pole("Pole", "");
    ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
  }

  ObjectId InsertPole(double x, double y, int64_t type = 1) {
    auto id = db_->Insert(
        "Pole", {{"pole_type", Value::Int(type)},
                 {"pole_location", Value::MakeGeometry(PointGeom(x, y))}});
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? id.value() : 0;
  }

  std::unique_ptr<GeoDatabase> db_;
};

TEST_F(SnapshotTest, SnapshotSeesStateAtOpenNotLaterWrites) {
  const ObjectId a = InsertPole(1, 1, /*type=*/7);
  const Snapshot snap = db_->OpenSnapshot();

  ASSERT_TRUE(db_->Update(a, "pole_type", Value::Int(99)).ok());
  const ObjectId b = InsertPole(2, 2);

  // Current reads see the new world.
  EXPECT_EQ(db_->FindObject(a)->Get("pole_type").int_value(), 99);
  EXPECT_NE(db_->FindObject(b), nullptr);

  // The snapshot still sees the world at open time.
  const ObjectInstance* old_a = db_->FindObjectAt(snap, a);
  ASSERT_NE(old_a, nullptr);
  EXPECT_EQ(old_a->Get("pole_type").int_value(), 7);
  EXPECT_EQ(db_->FindObjectAt(snap, b), nullptr);

  auto got = db_->GetValueAt(snap, a);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->Get("pole_type").int_value(), 7);
  EXPECT_TRUE(db_->GetValueAt(snap, b).status().IsNotFound());
}

TEST_F(SnapshotTest, PointerStaysValidAcrossUpdateDeleteAndReclaim) {
  // Regression for the retired contract: under the old in-place store,
  // holding a GetValue pointer across a Delete and dereferencing it
  // was a use-after-free (caught by ASan). With a pinned snapshot the
  // same access pattern is defined behavior.
  const ObjectId a = InsertPole(3, 3, /*type=*/42);
  const Snapshot snap = db_->OpenSnapshot();

  auto got = db_->GetValueAt(snap, a);
  ASSERT_TRUE(got.ok());
  const ObjectInstance* pinned = *got;

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->Update(a, "pole_type", Value::Int(100 + i)).ok());
  }
  ASSERT_TRUE(db_->Delete(a).ok());
  db_->ReclaimVersions();  // Must not free what the snapshot pins.

  // The pinned version is intact, attribute values included.
  EXPECT_EQ(pinned->id(), a);
  EXPECT_EQ(pinned->class_name(), "Pole");
  EXPECT_EQ(pinned->Get("pole_type").int_value(), 42);
  // And the object is gone from the current world.
  EXPECT_EQ(db_->FindObject(a), nullptr);
}

TEST_F(SnapshotTest, DeleteIsInvisibleToEarlierSnapshots) {
  const ObjectId a = InsertPole(1, 1);
  const Snapshot before = db_->OpenSnapshot();
  ASSERT_TRUE(db_->Delete(a).ok());
  const Snapshot after = db_->OpenSnapshot();

  EXPECT_NE(db_->FindObjectAt(before, a), nullptr);
  EXPECT_EQ(db_->FindObjectAt(after, a), nullptr);
  EXPECT_TRUE(db_->GetValueAt(after, a).status().IsNotFound());
  EXPECT_EQ(db_->FindObject(a), nullptr);
}

TEST_F(SnapshotTest, ScanExtentAtResurrectsDeletedAndHidesInserted) {
  const ObjectId a = InsertPole(1, 1);
  const ObjectId b = InsertPole(2, 2);
  const ObjectId c = InsertPole(3, 3);
  const Snapshot snap = db_->OpenSnapshot();

  ASSERT_TRUE(db_->Delete(b).ok());
  const ObjectId d = InsertPole(4, 4);

  auto now = db_->ScanExtent("Pole");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(std::vector<ObjectId>({a, c, d}), [&] {
    auto ids = *now;
    std::sort(ids.begin(), ids.end());
    return ids;
  }());

  auto then = db_->ScanExtentAt(snap, "Pole");
  ASSERT_TRUE(then.ok());
  // Ascending, deleted member resurrected, later insert hidden.
  EXPECT_EQ(*then, std::vector<ObjectId>({a, b, c}));
}

TEST_F(SnapshotTest, ScanExtentAtWindowUsesSnapshotGeometry) {
  const ObjectId a = InsertPole(1, 1);
  const Snapshot snap = db_->OpenSnapshot();
  // Move the pole far away after the snapshot.
  ASSERT_TRUE(
      db_->Update(a, "pole_location", Value::MakeGeometry(PointGeom(50, 50)))
          .ok());

  const geom::BoundingBox old_window(0, 0, 5, 5);
  const geom::BoundingBox new_window(45, 45, 55, 55);

  // Current scans find it only at the new location.
  EXPECT_EQ((*db_->ScanExtent("Pole", old_window)).size(), 0u);
  EXPECT_EQ((*db_->ScanExtent("Pole", new_window)).size(), 1u);

  // The snapshot scan filters on the snapshot version's geometry: the
  // pole is still where it was when the snapshot opened.
  EXPECT_EQ(*db_->ScanExtentAt(snap, "Pole", old_window),
            std::vector<ObjectId>({a}));
  EXPECT_EQ((*db_->ScanExtentAt(snap, "Pole", new_window)).size(), 0u);
}

TEST_F(SnapshotTest, ScanExtentAtFastPathMatchesScanExtent) {
  // With no writes since open, the snapshot epoch is current and the
  // scan takes the index-backed fast path; results must agree with
  // the plain scan.
  for (int i = 0; i < 16; ++i) InsertPole(i, i);
  const Snapshot snap = db_->OpenSnapshot();

  auto plain = db_->ScanExtent("Pole");
  auto at = db_->ScanExtentAt(snap, "Pole");
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(at.ok());
  std::sort(plain->begin(), plain->end());
  EXPECT_EQ(*plain, *at);

  const geom::BoundingBox window(0, 0, 4.5, 4.5);
  auto plain_w = db_->ScanExtent("Pole", window);
  auto at_w = db_->ScanExtentAt(snap, "Pole", window);
  ASSERT_TRUE(plain_w.ok());
  ASSERT_TRUE(at_w.ok());
  std::sort(plain_w->begin(), plain_w->end());
  EXPECT_EQ(*plain_w, *at_w);
}

TEST_F(SnapshotTest, ReclamationFreesHistoryOncePinsDrop) {
  const ObjectId a = InsertPole(1, 1);
  // Without any snapshot open, writes reclaim their own history.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Update(a, "pole_type", Value::Int(i)).ok());
  }
  EXPECT_EQ(db_->TotalVersionCount(), 1u);
  EXPECT_GE(db_->stats().versions_reclaimed, 10u);

  // A pinned snapshot retains the versions written after it opened.
  {
    const Snapshot snap = db_->OpenSnapshot();
    EXPECT_EQ(db_->PinnedSnapshotCount(), 1u);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(db_->Update(a, "pole_type", Value::Int(100 + i)).ok());
    }
    EXPECT_GT(db_->TotalVersionCount(), 1u);
  }
  // Snapshot released: reclamation drops the retained history.
  EXPECT_EQ(db_->PinnedSnapshotCount(), 0u);
  db_->ReclaimVersions();
  EXPECT_EQ(db_->TotalVersionCount(), 1u);
}

TEST_F(SnapshotTest, TombstonesReclaimedAfterRelease) {
  const ObjectId a = InsertPole(1, 1);
  Snapshot snap = db_->OpenSnapshot();
  ASSERT_TRUE(db_->Delete(a).ok());
  // The tombstone and the deleted version stay while pinned.
  EXPECT_GE(db_->TotalVersionCount(), 1u);
  EXPECT_NE(db_->FindObjectAt(snap, a), nullptr);

  snap.Release();
  db_->ReclaimVersions();
  EXPECT_EQ(db_->TotalVersionCount(), 0u);
  EXPECT_EQ(db_->NumObjects(), 0u);
}

TEST_F(SnapshotTest, DeleteThenRestoreIsOneMemberPerScan) {
  const ObjectId a = InsertPole(1, 1, /*type=*/1);
  const Snapshot before = db_->OpenSnapshot();
  ASSERT_TRUE(db_->Delete(a).ok());
  const Snapshot during = db_->OpenSnapshot();

  // Resurrect the same id via the bulk-load path.
  ObjectInstance obj(a, "Pole");
  obj.Set("pole_type", Value::Int(2));
  obj.Set("pole_location", Value::MakeGeometry(PointGeom(1, 1)));
  ASSERT_TRUE(db_->RestoreObject(std::move(obj)).ok());
  const Snapshot after = db_->OpenSnapshot();

  // Each epoch sees exactly one membership state — the id must not be
  // duplicated by the dead-list resurrection logic.
  EXPECT_EQ(*db_->ScanExtentAt(before, "Pole"), std::vector<ObjectId>({a}));
  EXPECT_EQ(db_->FindObjectAt(before, a)->Get("pole_type").int_value(), 1);
  EXPECT_EQ((*db_->ScanExtentAt(during, "Pole")).size(), 0u);
  EXPECT_EQ(db_->FindObjectAt(during, a), nullptr);
  EXPECT_EQ(*db_->ScanExtentAt(after, "Pole"), std::vector<ObjectId>({a}));
  EXPECT_EQ(db_->FindObjectAt(after, a)->Get("pole_type").int_value(), 2);
}

TEST_F(SnapshotTest, ReleasedAndForeignSnapshotsAreRejected) {
  const ObjectId a = InsertPole(1, 1);
  Snapshot snap = db_->OpenSnapshot();
  EXPECT_TRUE(snap.valid());
  snap.Release();
  EXPECT_FALSE(snap.valid());
  snap.Release();  // Idempotent.

  EXPECT_EQ(db_->FindObjectAt(snap, a), nullptr);
  EXPECT_TRUE(db_->GetValueAt(snap, a).status().IsInvalidArgument());
  EXPECT_TRUE(db_->ScanExtentAt(snap, "Pole").status().IsInvalidArgument());

  // A snapshot of another database is not usable here.
  GeoDatabase other("other_schema");
  const Snapshot foreign = other.OpenSnapshot();
  EXPECT_EQ(db_->FindObjectAt(foreign, a), nullptr);
  EXPECT_TRUE(db_->GetValueAt(foreign, a).status().IsInvalidArgument());
  EXPECT_TRUE(db_->ScanExtentAt(foreign, "Pole").status().IsInvalidArgument());
}

TEST_F(SnapshotTest, MoveTransfersThePin) {
  InsertPole(1, 1);
  Snapshot a = db_->OpenSnapshot();
  EXPECT_EQ(db_->PinnedSnapshotCount(), 1u);

  Snapshot b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(db_->PinnedSnapshotCount(), 1u);

  Snapshot c = db_->OpenSnapshot();
  EXPECT_EQ(db_->PinnedSnapshotCount(), 2u);
  c = std::move(b);  // Move-assign releases c's own pin.
  EXPECT_EQ(db_->PinnedSnapshotCount(), 1u);
  c.Release();
  EXPECT_EQ(db_->PinnedSnapshotCount(), 0u);
}

TEST_F(SnapshotTest, GetClassIsConsistentWhileHoldingSnapshots) {
  // GetClass pins its own snapshot internally; open handles must not
  // perturb its results, and evaluating under retained history still
  // sees only current members.
  for (int i = 0; i < 8; ++i) InsertPole(i, i, /*type=*/i);
  const Snapshot snap = db_->OpenSnapshot();
  ASSERT_TRUE(db_->Delete(*db_->ScanExtent("Pole")->begin()).ok());

  GetClassOptions options;
  options.predicates.push_back({"pole_type", CompareOp::kGe, Value::Int(0)});
  auto result = db_->GetClass("Pole", options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ids.size(), 7u);
}

TEST_F(SnapshotTest, StatsReturnsAnIndependentCopy) {
  InsertPole(1, 1);
  const DatabaseStats before = db_->stats();
  const uint64_t inserts_then = before.inserts;
  const uint64_t opened_then = before.snapshots_opened;

  InsertPole(2, 2);
  { const Snapshot snap = db_->OpenSnapshot(); }

  // The earlier copy is frozen; a fresh copy observes the new work.
  EXPECT_EQ(before.inserts, inserts_then);
  EXPECT_EQ(before.snapshots_opened, opened_then);
  EXPECT_EQ(db_->stats().inserts, inserts_then + 1);
  EXPECT_EQ(db_->stats().snapshots_opened, opened_then + 1);
}

}  // namespace
}  // namespace agis::geodb
