#include "geodb/schema.h"

#include <gtest/gtest.h>

namespace agis::geodb {
namespace {

ClassDef SimpleClass(const std::string& name) {
  ClassDef cls(name, "test class");
  EXPECT_TRUE(cls.AddAttribute(AttributeDef::String("name")).ok());
  return cls;
}

TEST(ClassDef, RejectsDuplicateAttributes) {
  ClassDef cls("A", "");
  EXPECT_TRUE(cls.AddAttribute(AttributeDef::Int("x")).ok());
  EXPECT_TRUE(cls.AddAttribute(AttributeDef::Int("x")).IsAlreadyExists());
  EXPECT_TRUE(cls.AddAttribute(AttributeDef::Int("")).IsInvalidArgument());
}

TEST(Schema, RegistrationAndLookup) {
  Schema schema("s");
  EXPECT_TRUE(schema.AddClass(SimpleClass("A")).ok());
  EXPECT_TRUE(schema.AddClass(SimpleClass("A")).IsAlreadyExists());
  EXPECT_TRUE(schema.HasClass("A"));
  EXPECT_FALSE(schema.HasClass("B"));
  EXPECT_EQ(schema.ClassNames(), (std::vector<std::string>{"A"}));
}

TEST(Schema, ParentMustExist) {
  Schema schema("s");
  ClassDef orphan("B", "");
  orphan.set_parent("missing");
  EXPECT_TRUE(schema.AddClass(std::move(orphan)).IsNotFound());
}

TEST(Schema, RefTargetMustExistOrBeSelf) {
  Schema schema("s");
  ClassDef a("A", "");
  EXPECT_TRUE(a.AddAttribute(AttributeDef::Ref("other", "Missing")).ok());
  EXPECT_TRUE(schema.AddClass(std::move(a)).IsNotFound());

  ClassDef self("Node", "");
  EXPECT_TRUE(self.AddAttribute(AttributeDef::Ref("next", "Node")).ok());
  EXPECT_TRUE(schema.AddClass(std::move(self)).ok());
}

TEST(Schema, InheritanceChainLookups) {
  Schema schema("s");
  ClassDef base("Base", "");
  EXPECT_TRUE(base.AddAttribute(AttributeDef::String("status")).ok());
  EXPECT_TRUE(schema.AddClass(std::move(base)).ok());
  ClassDef mid("Mid", "");
  mid.set_parent("Base");
  EXPECT_TRUE(mid.AddAttribute(AttributeDef::Int("level")).ok());
  EXPECT_TRUE(schema.AddClass(std::move(mid)).ok());
  ClassDef leaf("Leaf", "");
  leaf.set_parent("Mid");
  EXPECT_TRUE(leaf.AddAttribute(AttributeDef::Double("value")).ok());
  EXPECT_TRUE(schema.AddClass(std::move(leaf)).ok());

  EXPECT_TRUE(schema.IsSubclassOf("Leaf", "Base"));
  EXPECT_TRUE(schema.IsSubclassOf("Leaf", "Leaf"));
  EXPECT_FALSE(schema.IsSubclassOf("Base", "Leaf"));
  EXPECT_EQ(schema.SubclassesOf("Base"),
            (std::vector<std::string>{"Mid"}));

  auto attrs = schema.AllAttributesOf("Leaf");
  ASSERT_TRUE(attrs.ok());
  ASSERT_EQ(attrs.value().size(), 3u);
  // Ancestors first.
  EXPECT_EQ(attrs.value()[0].name, "status");
  EXPECT_EQ(attrs.value()[2].name, "value");

  EXPECT_NE(schema.FindAttributeOf("Leaf", "status"), nullptr);
  EXPECT_EQ(schema.FindAttributeOf("Base", "value"), nullptr);
  EXPECT_TRUE(schema.AllAttributesOf("Nope").status().IsNotFound());
}

TEST(AttributeDef, TypeStrings) {
  EXPECT_EQ(AttributeDef::Int("x").TypeString(), "int");
  EXPECT_EQ(AttributeDef::Ref("s", "Supplier").TypeString(), "Supplier");
  EXPECT_EQ(AttributeDef::List("xs", AttrType::kInt).TypeString(),
            "list<int>");
  const AttributeDef tuple = AttributeDef::Tuple(
      "t", {AttributeDef::String("a"), AttributeDef::Double("b")});
  EXPECT_EQ(tuple.TypeString(), "tuple(a: string, b: double)");
}

TEST(Schema, ToStringListsClasses) {
  Schema schema("phone_net");
  EXPECT_TRUE(schema.AddClass(SimpleClass("Pole")).ok());
  const std::string text = schema.ToString();
  EXPECT_NE(text.find("schema phone_net"), std::string::npos);
  EXPECT_NE(text.find("class Pole"), std::string::npos);
  EXPECT_NE(text.find("name: string;"), std::string::npos);
}

class CheckValueTypeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClassDef supplier("Supplier", "");
    ASSERT_TRUE(
        supplier.AddAttribute(AttributeDef::String("supplier_name")).ok());
    ASSERT_TRUE(schema_.AddClass(std::move(supplier)).ok());
    ClassDef special("SpecialSupplier", "");
    special.set_parent("Supplier");
    ASSERT_TRUE(schema_.AddClass(std::move(special)).ok());
  }
  Schema schema_{"s"};
};

TEST_F(CheckValueTypeTest, NullHandling) {
  AttributeDef optional = AttributeDef::Int("x");
  EXPECT_TRUE(CheckValueType(schema_, optional, Value()).ok());
  AttributeDef required = AttributeDef::Int("x");
  required.required = true;
  EXPECT_TRUE(
      CheckValueType(schema_, required, Value()).IsInvalidArgument());
}

TEST_F(CheckValueTypeTest, IntWidensToDouble) {
  EXPECT_TRUE(
      CheckValueType(schema_, AttributeDef::Double("d"), Value::Int(3)).ok());
  EXPECT_TRUE(CheckValueType(schema_, AttributeDef::Int("i"),
                             Value::Double(3.0))
                  .IsInvalidArgument());
}

TEST_F(CheckValueTypeTest, TupleFieldsChecked) {
  const AttributeDef tuple = AttributeDef::Tuple(
      "composition",
      {AttributeDef::String("material"), AttributeDef::Double("height")});
  EXPECT_TRUE(CheckValueType(schema_, tuple,
                             Value::MakeTuple(
                                 {{"material", Value::String("wood")}}))
                  .ok());
  EXPECT_TRUE(CheckValueType(schema_, tuple,
                             Value::MakeTuple({{"bogus", Value::Int(1)}}))
                  .IsInvalidArgument());
  EXPECT_TRUE(CheckValueType(schema_, tuple,
                             Value::MakeTuple(
                                 {{"material", Value::Int(1)}}))
                  .IsInvalidArgument());
}

TEST_F(CheckValueTypeTest, RefsRespectSubclassing) {
  const AttributeDef ref = AttributeDef::Ref("sup", "Supplier");
  EXPECT_TRUE(CheckValueType(schema_, ref, Value::Ref(1, "Supplier")).ok());
  EXPECT_TRUE(
      CheckValueType(schema_, ref, Value::Ref(1, "SpecialSupplier")).ok());
  EXPECT_TRUE(CheckValueType(schema_, ref, Value::Ref(1, "Other"))
                  .IsInvalidArgument());
}

TEST_F(CheckValueTypeTest, ListElementsChecked) {
  const AttributeDef list = AttributeDef::List("xs", AttrType::kInt);
  EXPECT_TRUE(CheckValueType(schema_, list,
                             Value::MakeList({Value::Int(1), Value::Int(2)}))
                  .ok());
  EXPECT_TRUE(CheckValueType(schema_, list,
                             Value::MakeList({Value::String("x")}))
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace agis::geodb
