// Model-based property test: BufferPool behaves exactly like a
// reference LRU implementation under random workloads.

#include <list>
#include <map>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/strutil.h"
#include "geodb/buffer_pool.h"

namespace agis::geodb {
namespace {

/// Straightforward reference LRU with the same byte-budget semantics.
class ModelLru {
 public:
  explicit ModelLru(size_t capacity) : capacity_(capacity) {}

  bool Get(const std::string& key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    Touch(key);
    return true;
  }

  void Put(const std::string& key, size_t charge) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      used_ -= it->second;
      entries_.erase(it);
      order_.remove(key);
    }
    if (charge > capacity_) return;
    while (!order_.empty() && used_ + charge > capacity_) {
      const std::string victim = order_.back();
      used_ -= entries_.at(victim);
      entries_.erase(victim);
      order_.pop_back();
    }
    entries_[key] = charge;
    order_.push_front(key);
    used_ += charge;
  }

  size_t used() const { return used_; }
  size_t count() const { return entries_.size(); }

 private:
  void Touch(const std::string& key) {
    order_.remove(key);
    order_.push_front(key);
  }

  size_t capacity_;
  size_t used_ = 0;
  std::map<std::string, size_t> entries_;
  std::list<std::string> order_;
};

class BufferPoolModel : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferPoolModel, MatchesReferenceLru) {
  agis::Rng rng(GetParam());
  const size_t capacity = 1000;
  BufferPool pool(capacity);
  ModelLru model(capacity);

  for (int step = 0; step < 2000; ++step) {
    const std::string key = agis::StrCat("k", rng.Uniform(30));
    if (rng.Bernoulli(0.5)) {
      const bool pool_hit = pool.Get(key) != nullptr;
      const bool model_hit = model.Get(key);
      ASSERT_EQ(pool_hit, model_hit) << "step " << step << " key " << key;
    } else {
      BufferSlice slice;
      slice.charge_bytes = 1 + rng.Uniform(300);
      model.Put(key, slice.charge_bytes);
      pool.Put(key, std::move(slice));
    }
    ASSERT_EQ(pool.used_bytes(), model.used()) << "step " << step;
    ASSERT_EQ(pool.entry_count(), model.count()) << "step " << step;
    ASSERT_LE(pool.used_bytes(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferPoolModel,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace agis::geodb
