#include "geodb/persist.h"

#include <gtest/gtest.h>

#include "workload/phone_net.h"

namespace agis::geodb {
namespace {

TEST(Persist, RoundTripsThePhoneNetwork) {
  GeoDatabase db("phone_net");
  workload::PhoneNetConfig config;
  config.num_poles = 25;
  config.num_ducts = 4;
  ASSERT_TRUE(workload::BuildPhoneNetwork(&db, config).ok());

  const std::string text = SaveDatabaseToString(db);
  EXPECT_NE(text.find("agisdb 1"), std::string::npos);
  auto loaded = LoadDatabaseFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  GeoDatabase& copy = *loaded.value();

  // Schema identical.
  EXPECT_EQ(copy.schema().name(), "phone_net");
  EXPECT_EQ(copy.schema().ClassNames(), db.schema().ClassNames());
  EXPECT_EQ(copy.schema().FindClass("Pole")->parent(), "NetworkElement");
  EXPECT_EQ(copy.schema().FindClass("Pole")->attributes().size(),
            db.schema().FindClass("Pole")->attributes().size());
  // Method *implementations* are host code and do not persist; the
  // loaded class has no methods until they are re-registered.
  EXPECT_EQ(copy.schema().FindMethodOf("Pole", "get_supplier_name"), nullptr);
  ASSERT_TRUE(copy.RegisterMethod(
                      "Pole",
                      MethodDef{"get_supplier_name", "",
                                [](const GeoDatabase&, const ObjectInstance&)
                                    -> agis::Result<Value> {
                                  return Value::String("re-registered");
                                }})
                  .ok());

  // Instances identical, ids preserved.
  for (const std::string& cls : db.schema().ClassNames()) {
    EXPECT_EQ(copy.ExtentSize(cls), db.ExtentSize(cls)) << cls;
  }
  const auto poles = db.ScanExtent("Pole");
  const Snapshot db_snap = db.OpenSnapshot();
  const Snapshot copy_snap = copy.OpenSnapshot();
  for (ObjectId id : poles.value()) {
    const ObjectInstance* original = db.FindObjectAt(db_snap, id);
    const ObjectInstance* restored = copy.FindObjectAt(copy_snap, id);
    ASSERT_NE(restored, nullptr) << "pole " << id;
    EXPECT_EQ(restored->values().size(), original->values().size());
    for (const auto& [attr, value] : original->values()) {
      EXPECT_EQ(restored->Get(attr), value) << attr << " of pole " << id;
    }
  }

  // The loaded spatial index answers like the original.
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.window = geom::BoundingBox(0, 0, 400, 400);
  auto a = db.GetClass("Pole", q);
  auto b = copy.GetClass("Pole", q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto sa = a.value().ids;
  auto sb = b.value().ids;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);

  // New inserts in the copy get fresh ids (next_id_ restored).
  auto fresh = copy.Insert(
      "Supplier", {{"supplier_name", Value::String("NewCo")}});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(db.FindObjectAt(db.OpenSnapshot(), fresh.value()), nullptr)
      << "fresh id collides with an existing one";
}

TEST(Persist, EscapingSurvivesHostileStrings) {
  GeoDatabase db("s");
  ClassDef cls("Note", "");
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Text("body")).ok());
  ASSERT_TRUE(db.RegisterClass(std::move(cls)).ok());
  const std::string hostile = "line1\nline2\t\"quoted\" \\slash end attr";
  ASSERT_TRUE(db.Insert("Note", {{"body", Value::String(hostile)}}).ok());
  auto loaded = LoadDatabaseFromString(SaveDatabaseToString(db));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const auto ids = loaded.value()->ScanExtent("Note");
  const Snapshot snap = loaded.value()->OpenSnapshot();
  EXPECT_EQ(loaded.value()
                ->FindObjectAt(snap, ids.value()[0])
                ->Get("body")
                .string_value(),
            hostile);
}

TEST(Persist, AllValueKindsRoundTrip) {
  GeoDatabase db("s");
  ClassDef cls("Everything", "");
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Bool("b")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Int("i")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Double("d")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Blob("bytes")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Geometry("g")).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::List("xs", AttrType::kInt)).ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Tuple(
                                   "t", {AttributeDef::String("s"),
                                         AttributeDef::Double("v")}))
                  .ok());
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Ref("self", "Everything")).ok());
  ASSERT_TRUE(db.RegisterClass(std::move(cls)).ok());

  Blob blob;
  blob.format = "bin";
  blob.bytes = {0x00, 0xff, 0x42, 0x0a};
  geom::Polygon poly;
  poly.outer = {{0, 0}, {3.25, 0}, {3.25, 7.125}};
  auto id = db.Insert(
      "Everything",
      {{"b", Value::Bool(true)},
       {"i", Value::Int(-123456789)},
       {"d", Value::Double(0.1 + 0.2)},
       {"bytes", Value::MakeBlob(blob)},
       {"g", Value::MakeGeometry(geom::Geometry::FromPolygon(poly))},
       {"xs", Value::MakeList({Value::Int(1), Value::Int(2)})},
       {"t", Value::MakeTuple({{"s", Value::String("x")},
                               {"v", Value::Double(2.5)}})},
       {"self", Value::Ref(1, "Everything")}});
  ASSERT_TRUE(id.ok());

  auto loaded = LoadDatabaseFromString(SaveDatabaseToString(db));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Snapshot loaded_snap = loaded.value()->OpenSnapshot();
  const ObjectInstance* restored =
      loaded.value()->FindObjectAt(loaded_snap, id.value());
  ASSERT_NE(restored, nullptr);
  const Snapshot db_snap = db.OpenSnapshot();
  const ObjectInstance* original = db.FindObjectAt(db_snap, id.value());
  for (const auto& [attr, value] : original->values()) {
    EXPECT_EQ(restored->Get(attr), value) << attr;
  }
  // Exact double round-trip (0.1 + 0.2 != 0.3).
  EXPECT_EQ(restored->Get("d").double_value(), 0.1 + 0.2);
}

TEST(Persist, FileRoundTrip) {
  GeoDatabase db("s");
  ClassDef cls("P", "");
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Geometry("loc")).ok());
  ASSERT_TRUE(db.RegisterClass(std::move(cls)).ok());
  ASSERT_TRUE(db.Insert("P", {{"loc", Value::MakeGeometry(
                                          geom::Geometry::FromPoint(
                                              {1, 2}))}})
                  .ok());
  const std::string path = ::testing::TempDir() + "/agis_persist_test.db";
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  auto loaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->ExtentSize("P"), 1u);
  EXPECT_TRUE(LoadDatabaseFromFile("/no/such/file").status().IsNotFound());
}

TEST(Persist, RejectsCorruptInput) {
  EXPECT_TRUE(LoadDatabaseFromString("").status().IsParseError());
  EXPECT_TRUE(LoadDatabaseFromString("notdb 1").status().IsParseError());
  EXPECT_TRUE(LoadDatabaseFromString("agisdb 99 schema \"s\"")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadDatabaseFromString("agisdb 1 schema \"s\" bogus")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadDatabaseFromString(
                  "agisdb 1 schema \"s\" object 1 \"Missing\" end")
                  .status()
                  .IsNotFound());
  // Truncated object block.
  EXPECT_TRUE(LoadDatabaseFromString(
                  "agisdb 1 schema \"s\" class \"P\" parent \"\" doc \"\" "
                  "end object 1 \"P\" \"x\" int")
                  .status()
                  .IsParseError());
}

TEST(RestoreObject, ValidatesInput) {
  GeoDatabase db("s");
  ClassDef cls("P", "");
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Int("x")).ok());
  ASSERT_TRUE(db.RegisterClass(std::move(cls)).ok());
  ObjectInstance no_id(0, "P");
  EXPECT_TRUE(db.RestoreObject(std::move(no_id)).IsInvalidArgument());
  ObjectInstance bad_class(5, "Nope");
  EXPECT_TRUE(db.RestoreObject(std::move(bad_class)).IsNotFound());
  ObjectInstance bad_type(5, "P");
  bad_type.Set("x", Value::String("not an int"));
  EXPECT_TRUE(db.RestoreObject(std::move(bad_type)).IsInvalidArgument());
  ObjectInstance good(5, "P");
  good.Set("x", Value::Int(1));
  EXPECT_TRUE(db.RestoreObject(std::move(good)).ok());
  ObjectInstance duplicate(5, "P");
  EXPECT_TRUE(db.RestoreObject(std::move(duplicate)).IsAlreadyExists());
}

}  // namespace
}  // namespace agis::geodb
