#include "geodb/events.h"

#include <gtest/gtest.h>

#include "active/event.h"

namespace agis::geodb {
namespace {

TEST(DbEventKind, NamesAreStable) {
  // The active mechanism matches rules by these exact names; renaming
  // one silently breaks every compiled directive.
  EXPECT_STREQ(DbEventKindName(DbEventKind::kGetSchema), "Get_Schema");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kGetClass), "Get_Class");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kGetValue), "Get_Value");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kBeforeInsert), "Before_Insert");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kAfterInsert), "After_Insert");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kBeforeUpdate), "Before_Update");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kAfterUpdate), "After_Update");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kBeforeDelete), "Before_Delete");
  EXPECT_STREQ(DbEventKindName(DbEventKind::kAfterDelete), "After_Delete");
}

TEST(DbEvent, ToStringIncludesSetFields) {
  DbEvent event;
  event.kind = DbEventKind::kGetClass;
  event.context.user = "juliano";
  event.schema_name = "phone_net";
  event.class_name = "Pole";
  const std::string text = event.ToString();
  EXPECT_NE(text.find("Get_Class"), std::string::npos);
  EXPECT_NE(text.find("juliano"), std::string::npos);
  EXPECT_NE(text.find("schema=phone_net"), std::string::npos);
  EXPECT_NE(text.find("class=Pole"), std::string::npos);
  EXPECT_EQ(text.find("object="), std::string::npos);  // Unset.
}

TEST(DbEvent, ConversionToActiveEvent) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeUpdate;
  event.context.user = "u";
  event.schema_name = "s";
  event.class_name = "Pole";
  event.object_id = 42;
  event.attribute = "pole_location";
  event.new_value =
      Value::MakeGeometry(geom::Geometry::FromPoint({1, 2}));
  event.old_value =
      Value::MakeGeometry(geom::Geometry::FromPoint({3, 4}));

  const active::Event converted = active::FromDbEvent(event);
  EXPECT_EQ(converted.name, "Before_Update");
  EXPECT_EQ(converted.context.user, "u");
  EXPECT_EQ(converted.Param("schema"), "s");
  EXPECT_EQ(converted.Param("class"), "Pole");
  EXPECT_EQ(converted.Param("object"), "42");
  EXPECT_EQ(converted.Param("attribute"), "pole_location");
  EXPECT_EQ(converted.Param("new_wkt"), "POINT (1 2)");
  EXPECT_EQ(converted.Param("old_wkt"), "POINT (3 4)");
  EXPECT_EQ(converted.Param("missing"), "");
  EXPECT_NE(converted.ToString().find("Before_Update"), std::string::npos);
}

TEST(DbEvent, NonGeometryValuesProduceNoWktParams) {
  DbEvent event;
  event.kind = DbEventKind::kBeforeUpdate;
  event.new_value = Value::Int(5);
  const active::Event converted = active::FromDbEvent(event);
  EXPECT_EQ(converted.Param("new_wkt"), "");
}

}  // namespace
}  // namespace agis::geodb
