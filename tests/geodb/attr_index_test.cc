#include "geodb/attr_index.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace agis::geodb {
namespace {

using Ids = std::vector<ObjectId>;

/// Reference implementation: the residual predicate loop's semantics,
/// applied to an explicit (id, value) table. The index must agree with
/// this on every operator and operand.
Ids ScanReference(const std::vector<std::pair<ObjectId, Value>>& rows,
                  CompareOp op, const Value& operand) {
  Ids out;
  for (const auto& [id, v] : rows) {
    auto cmp = CompareValues(v, operand);
    if (!cmp.ok()) continue;  // Comparison error: no match.
    const int c = cmp.value();
    bool keep = false;
    switch (op) {
      case CompareOp::kEq: keep = c == 0; break;
      case CompareOp::kNe: keep = c != 0; break;
      case CompareOp::kLt: keep = c < 0; break;
      case CompareOp::kLe: keep = c <= 0; break;
      case CompareOp::kGt: keep = c > 0; break;
      case CompareOp::kGe: keep = c >= 0; break;
      case CompareOp::kContains: break;
    }
    if (keep) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AttrKey, NormalizesNumericKindsToOneClass) {
  const auto from_int = AttrKey::FromValue(Value::Int(2));
  const auto from_double = AttrKey::FromValue(Value::Double(2.0));
  ASSERT_TRUE(from_int.has_value());
  ASSERT_TRUE(from_double.has_value());
  EXPECT_TRUE(*from_int == *from_double);
  EXPECT_EQ(AttrKeyHash()(*from_int), AttrKeyHash()(*from_double));
}

TEST(AttrKey, BoolsAndStringsGetTheirOwnClasses) {
  const auto b = AttrKey::FromValue(Value::Bool(true));
  const auto n = AttrKey::FromValue(Value::Int(1));
  const auto s = AttrKey::FromValue(Value::String("1"));
  ASSERT_TRUE(b && n && s);
  EXPECT_FALSE(*b == *n);
  EXPECT_FALSE(*n == *s);
  EXPECT_TRUE(*b < *n);  // Class order: bool < number < string.
  EXPECT_TRUE(*n < *s);
}

TEST(AttrKey, RejectsNonScalarsNullsAndNan) {
  EXPECT_FALSE(AttrKey::FromValue(Value()).has_value());
  EXPECT_FALSE(
      AttrKey::FromValue(Value::Double(std::nan(""))).has_value());
  EXPECT_FALSE(AttrKey::FromValue(Value::Ref(1, "Pole")).has_value());
  EXPECT_FALSE(AttrKey::FromValue(Value::MakeList({})).has_value());
}

class AttributeIndexTest : public ::testing::Test {
 protected:
  void Add(ObjectId id, Value v) {
    index_.Insert(id, v);
    rows_.push_back({id, std::move(v)});
  }

  /// Asserts Eval matches the reference scan and EstimateCount bounds it.
  void ExpectExact(CompareOp op, const Value& operand) {
    const auto got = index_.Eval(op, operand);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, ScanReference(rows_, op, operand));
    const auto est = index_.EstimateCount(op, operand);
    ASSERT_TRUE(est.has_value());
    EXPECT_GE(*est, got->size());
  }

  AttributeIndex index_;
  std::vector<std::pair<ObjectId, Value>> rows_;
};

TEST_F(AttributeIndexTest, AllOperatorsMatchReferenceScan) {
  Add(1, Value::Int(1));
  Add(2, Value::Int(2));
  Add(3, Value::Double(2.0));  // Cross-kind duplicate of id 2's key.
  Add(4, Value::Double(2.5));
  Add(5, Value::Int(9));
  Add(6, Value::String("beta"));
  Add(7, Value::String("alpha"));
  Add(8, Value::Bool(true));
  Add(9, Value());  // Null: never indexed, never matched.

  const std::vector<Value> operands = {
      Value::Int(2),        Value::Double(2.0), Value::Double(2.4),
      Value::Int(0),        Value::Int(100),    Value::String("beta"),
      Value::String("a"),   Value::Bool(true),  Value::Bool(false)};
  for (const Value& operand : operands) {
    for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                         CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
      SCOPED_TRACE(static_cast<int>(op));
      ExpectExact(op, operand);
    }
  }
}

TEST_F(AttributeIndexTest, InequalityStaysWithinTheValueClass) {
  Add(1, Value::Int(5));
  Add(2, Value::String("5"));
  Add(3, Value::Bool(true));
  // kNe 5: only numeric values compare against a number; strings and
  // bools error out, which means "no match" — not "not equal".
  const auto got = index_.Eval(CompareOp::kNe, Value::Int(4));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Ids{1});
}

TEST_F(AttributeIndexTest, StoredNansMatchEqLeGeAgainstAnyNumber) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Add(1, Value::Double(nan));
  Add(2, Value::Int(7));
  // CompareValues(NaN, x) reports 0 for numeric x (neither < nor >),
  // so a stored NaN "equals" every number under the residual rules.
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLe, CompareOp::kGe}) {
    SCOPED_TRACE(static_cast<int>(op));
    ExpectExact(op, Value::Int(7));
    ExpectExact(op, Value::Double(-3.5));
  }
  for (CompareOp op : {CompareOp::kNe, CompareOp::kLt, CompareOp::kGt}) {
    SCOPED_TRACE(static_cast<int>(op));
    ExpectExact(op, Value::Int(7));
  }
  // But never against a string operand: cross-class, comparison errors.
  const auto got = index_.Eval(CompareOp::kEq, Value::String("7"));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_F(AttributeIndexTest, DegenerateOperandsFallBackToResidual) {
  Add(1, Value::Int(1));
  // Null operand: CompareValues(null, null) == 0, and the index holds
  // no nulls, so it cannot answer exactly.
  EXPECT_FALSE(index_.Eval(CompareOp::kEq, Value()).has_value());
  EXPECT_FALSE(index_.EstimateCount(CompareOp::kEq, Value()).has_value());
  // NaN operand likewise (it "equals" every stored number).
  EXPECT_FALSE(
      index_.Eval(CompareOp::kEq, Value::Double(std::nan(""))).has_value());
  // Contains is never indexable.
  EXPECT_FALSE(AttributeIndex::SupportsOp(CompareOp::kContains));
}

TEST_F(AttributeIndexTest, NonScalarOperandIsAnExactEmptyAnswer) {
  Add(1, Value::Int(1));
  Add(2, Value::String("x"));
  // A ref/list/tuple operand errors against every scalar, so the exact
  // answer is the empty set — the index can say so without a scan.
  const auto got = index_.Eval(CompareOp::kEq, Value::Ref(9, "Pole"));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ(index_.EstimateCount(CompareOp::kNe, Value::MakeList({})), 0u);
}

TEST_F(AttributeIndexTest, RemoveMaintainsPostingsAndCounts) {
  Add(1, Value::Int(5));
  Add(2, Value::Int(5));
  Add(3, Value::Double(std::numeric_limits<double>::quiet_NaN()));
  // NaN is held in a side posting: counted as an entry, not as a key.
  EXPECT_EQ(index_.entry_count(), 3u);
  EXPECT_EQ(index_.distinct_keys(), 1u);

  index_.Remove(1, Value::Int(5));
  EXPECT_EQ(index_.Eval(CompareOp::kEq, Value::Int(5)), (Ids{2, 3}));
  index_.Remove(3, Value::Double(std::nan("")));
  EXPECT_EQ(index_.Eval(CompareOp::kEq, Value::Int(5)), (Ids{2}));
  index_.Remove(2, Value::Int(5));
  EXPECT_EQ(index_.entry_count(), 0u);
  EXPECT_EQ(index_.distinct_keys(), 0u);
  EXPECT_EQ(index_.Eval(CompareOp::kEq, Value::Int(5)), (Ids{}));
  // Removing something never inserted is a no-op.
  index_.Remove(42, Value::Int(5));
  index_.Remove(42, Value());
}

TEST_F(AttributeIndexTest, EstimateIsZeroOnlyWhenAnswerIsEmpty) {
  Add(1, Value::Int(1));
  Add(2, Value::Int(3));
  EXPECT_EQ(index_.EstimateCount(CompareOp::kEq, Value::Int(2)), 0u);
  EXPECT_EQ(index_.EstimateCount(CompareOp::kLt, Value::Int(1)), 0u);
  EXPECT_EQ(index_.EstimateCount(CompareOp::kGt, Value::Int(3)), 0u);
  EXPECT_EQ(index_.EstimateCount(CompareOp::kEq, Value::Int(3)), 1u);
  EXPECT_EQ(index_.EstimateCount(CompareOp::kNe, Value::Int(3)), 1u);
}

AttrKey NumKey(double n) {
  AttrKey k;
  k.cls = AttrKey::Class::kNumber;
  k.number = n;
  return k;
}

TEST(AttributeIndexFromSortedRuns, BuildsAQueryableIndex) {
  auto built = AttributeIndex::FromSortedRuns(
      {NumKey(1), NumKey(3)}, {0, 2, 3}, {4, 9, 2}, {7});
  ASSERT_TRUE(built.ok()) << built.status();
  AttributeIndex index = std::move(built).value();
  EXPECT_EQ(index.entry_count(), 4u);
  EXPECT_EQ(index.distinct_keys(), 2u);
  // The NaN side posting (id 7) joined the runs: stored NaN compares
  // equal to every numeric operand, so it rides along in kEq/kLe/kGe.
  EXPECT_EQ(index.Eval(CompareOp::kEq, Value::Int(1)), (Ids{4, 7, 9}));
  EXPECT_EQ(index.Eval(CompareOp::kLe, Value::Int(3)), (Ids{2, 4, 7, 9}));
  EXPECT_EQ(index.Eval(CompareOp::kGt, Value::Int(1)), (Ids{2}));
  // And the result composes with later incremental writes.
  index.Insert(5, Value::Int(3));
  EXPECT_EQ(index.Eval(CompareOp::kEq, Value::Int(3)), (Ids{2, 5, 7}));
  index.Remove(9, Value::Int(1));
  EXPECT_EQ(index.Eval(CompareOp::kEq, Value::Int(1)), (Ids{4, 7}));
}

TEST(AttributeIndexFromSortedRuns, RejectsEveryBrokenInvariant) {
  // Offsets that do not delimit the pool.
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({NumKey(1)}, {0, 3}, {4, 9}, {}).ok());
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({NumKey(1)}, {0}, {4}, {}).ok());
  // Keys out of order / duplicated.
  EXPECT_FALSE(AttributeIndex::FromSortedRuns(
                   {NumKey(3), NumKey(1)}, {0, 1, 2}, {4, 9}, {})
                   .ok());
  EXPECT_FALSE(AttributeIndex::FromSortedRuns(
                   {NumKey(1), NumKey(1)}, {0, 1, 2}, {4, 9}, {})
                   .ok());
  // Empty key slice.
  EXPECT_FALSE(AttributeIndex::FromSortedRuns(
                   {NumKey(1), NumKey(2)}, {0, 0, 1}, {4}, {})
                   .ok());
  // Slice ids out of order, duplicated, or zero.
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({NumKey(1)}, {0, 2}, {9, 4}, {}).ok());
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({NumKey(1)}, {0, 2}, {4, 4}, {}).ok());
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({NumKey(1)}, {0, 1}, {0}, {}).ok());
  // NaN ids out of order or zero.
  EXPECT_FALSE(
      AttributeIndex::FromSortedRuns({}, {0}, {}, {5, 2}).ok());
  EXPECT_FALSE(AttributeIndex::FromSortedRuns({}, {0}, {}, {0}).ok());
  // The empty index is a valid degenerate case.
  EXPECT_TRUE(AttributeIndex::FromSortedRuns({}, {0}, {}, {}).ok());
}

}  // namespace
}  // namespace agis::geodb
