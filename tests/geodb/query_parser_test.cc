#include "geodb/query_parser.h"

#include <gtest/gtest.h>

#include "geodb/database.h"
#include "workload/phone_net.h"

namespace agis::geodb {
namespace {

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GeoDatabase>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(db_.get()).ok());
  }

  agis::Result<ParsedQuery> Parse(const std::string& text) {
    return ParseQuery(text, db_->schema());
  }

  std::unique_ptr<GeoDatabase> db_;
};

TEST_F(QueryParserTest, BareSelect) {
  auto q = Parse("select Pole");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->class_name, "Pole");
  EXPECT_TRUE(q->options.predicates.empty());
  EXPECT_FALSE(q->options.window.has_value());
  EXPECT_FALSE(q->options.spatial.has_value());
}

TEST_F(QueryParserTest, WherePredicatesWithTypes) {
  auto q = Parse(
      "select Pole where pole_type >= 2 and status != 'repair' "
      "and install_year < 1990");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->options.predicates.size(), 3u);
  EXPECT_EQ(q->options.predicates[0].attribute, "pole_type");
  EXPECT_EQ(q->options.predicates[0].op, CompareOp::kGe);
  EXPECT_EQ(q->options.predicates[0].operand, Value::Int(2));
  EXPECT_EQ(q->options.predicates[1].op, CompareOp::kNe);
  EXPECT_EQ(q->options.predicates[1].operand, Value::String("repair"));
  EXPECT_EQ(q->options.predicates[2].operand, Value::Int(1990));
}

TEST_F(QueryParserTest, ContainsAndBooleans) {
  auto q = Parse("select Supplier where supplier_name contains Wood");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->options.predicates[0].op, CompareOp::kContains);
  EXPECT_EQ(q->options.predicates[0].operand, Value::String("Wood"));
}

TEST_F(QueryParserTest, SpatialRelationWithWkt) {
  auto q = Parse(
      "select Pole inside POLYGON ((0 0, 500 0, 500 500, 0 500)) "
      "limit 10");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->options.spatial.has_value());
  EXPECT_EQ(q->options.spatial->relation, geom::TopoRelation::kInside);
  EXPECT_TRUE(q->options.spatial->target.is_polygon());
  EXPECT_EQ(q->options.limit, 10u);
}

TEST_F(QueryParserTest, WindowAndSubclasses) {
  auto q = Parse("select NetworkElement with subclasses window 0 0 100 100");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->options.include_subclasses);
  ASSERT_TRUE(q->options.window.has_value());
  EXPECT_EQ(*q->options.window, geom::BoundingBox(0, 0, 100, 100));
}

TEST_F(QueryParserTest, SchemaChecked) {
  EXPECT_TRUE(Parse("select Tower").status().IsNotFound());
  EXPECT_TRUE(Parse("select Pole where bogus = 1").status().IsNotFound());
}

TEST_F(QueryParserTest, SyntaxErrors) {
  EXPECT_TRUE(Parse("").status().IsParseError());
  EXPECT_TRUE(Parse("fetch Pole").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole frobnicate").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole where pole_type ~ 2").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole limit many").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole window 1 2 3").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole inside").status().IsParseError());
  EXPECT_TRUE(Parse("select Pole inside NOT_WKT").status().IsParseError());
  EXPECT_TRUE(
      Parse("select Pole where status = 'unterminated").status().IsParseError());
}

TEST_F(QueryParserTest, EndToEndExecution) {
  auto q = Parse(
      "select Pole where pole_type >= 2 "
      "inside POLYGON ((0 0, 1000 0, 1000 1000, 0 1000))");
  ASSERT_TRUE(q.ok()) << q.status();
  auto result = db_->GetClass(q->class_name, q->options);
  ASSERT_TRUE(result.ok());
  // Every returned pole satisfies both filters.
  const Snapshot snap = db_->OpenSnapshot();
  for (ObjectId id : result.value().ids) {
    const ObjectInstance* obj = db_->FindObjectAt(snap, id);
    EXPECT_GE(obj->Get("pole_type").int_value(), 2);
  }
  // And the filter is strictly narrower than the full extent.
  EXPECT_LT(result.value().ids.size(), db_->ExtentSize("Pole"));
  EXPECT_FALSE(result.value().ids.empty());
}

}  // namespace
}  // namespace agis::geodb
