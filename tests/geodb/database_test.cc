#include "geodb/database.h"

#include <set>

#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace agis::geodb {
namespace {

geom::Geometry PointGeom(double x, double y) {
  return geom::Geometry::FromPoint({x, y});
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<GeoDatabase>("test_schema");
    ClassDef supplier("Supplier", "");
    ASSERT_TRUE(
        supplier.AddAttribute(AttributeDef::String("supplier_name")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(supplier)).ok());

    ClassDef pole("Pole", "");
    ASSERT_TRUE(pole.AddAttribute(AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(AttributeDef::Geometry("pole_location")).ok());
    ASSERT_TRUE(
        pole.AddAttribute(AttributeDef::Ref("pole_supplier", "Supplier")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
  }

  ObjectId InsertPole(double x, double y, int64_t type = 1) {
    auto id = db_->Insert("Pole",
                          {{"pole_type", Value::Int(type)},
                           {"pole_location", Value::MakeGeometry(
                                                 PointGeom(x, y))}});
    EXPECT_TRUE(id.ok()) << id.status();
    return id.ok() ? id.value() : 0;
  }

  std::unique_ptr<GeoDatabase> db_;
};

TEST_F(DatabaseTest, InsertAssignsIdsAndUpdatesExtent) {
  const ObjectId a = InsertPole(1, 1);
  const ObjectId b = InsertPole(2, 2);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  EXPECT_EQ(db_->ExtentSize("Pole"), 2u);
  EXPECT_EQ(db_->NumObjects(), 2u);
  EXPECT_EQ(db_->GeometryAttributeOf("Pole"), "pole_location");
  EXPECT_EQ(db_->GeometryAttributeOf("Supplier"), "");
}

TEST_F(DatabaseTest, InsertValidatesSchema) {
  EXPECT_TRUE(db_->Insert("Nope", {}).status().IsNotFound());
  EXPECT_TRUE(db_->Insert("Pole", {{"bogus", Value::Int(1)}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(db_->Insert("Pole", {{"pole_type", Value::String("x")}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DatabaseTest, RequiredAttributeEnforced) {
  ClassDef strict("Strict", "");
  AttributeDef name = AttributeDef::String("name");
  name.required = true;
  ASSERT_TRUE(strict.AddAttribute(std::move(name)).ok());
  ASSERT_TRUE(db_->RegisterClass(std::move(strict)).ok());
  EXPECT_TRUE(db_->Insert("Strict", {}).status().IsInvalidArgument());
  EXPECT_TRUE(db_->Insert("Strict", {{"name", Value()}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Insert("Strict", {{"name", Value::String("ok")}}).ok());
}

TEST_F(DatabaseTest, UpdateAndDelete) {
  const ObjectId id = InsertPole(1, 1, 3);
  EXPECT_TRUE(db_->Update(id, "pole_type", Value::Int(5)).ok());
  EXPECT_EQ(db_->FindObjectAt(db_->OpenSnapshot(), id)
                ->Get("pole_type")
                .int_value(),
            5);
  EXPECT_TRUE(db_->Update(id, "bogus", Value::Int(1)).IsNotFound());
  EXPECT_TRUE(db_->Update(999, "pole_type", Value::Int(1)).IsNotFound());
  EXPECT_TRUE(db_->Delete(id).ok());
  EXPECT_EQ(db_->FindObjectAt(db_->OpenSnapshot(), id), nullptr);
  EXPECT_EQ(db_->ExtentSize("Pole"), 0u);
  EXPECT_TRUE(db_->Delete(id).IsNotFound());
}

TEST_F(DatabaseTest, GeometryUpdateMovesIndexEntry) {
  const ObjectId id = InsertPole(1, 1);
  GetClassOptions near_origin;
  near_origin.window = geom::BoundingBox(0, 0, 2, 2);
  near_origin.use_buffer_pool = false;
  EXPECT_EQ(db_->GetClass("Pole", near_origin).value().ids.size(), 1u);
  ASSERT_TRUE(
      db_->Update(id, "pole_location", Value::MakeGeometry(PointGeom(50, 50)))
          .ok());
  EXPECT_TRUE(db_->GetClass("Pole", near_origin).value().ids.empty());
  GetClassOptions far;
  far.window = geom::BoundingBox(49, 49, 51, 51);
  far.use_buffer_pool = false;
  EXPECT_EQ(db_->GetClass("Pole", far).value().ids.size(), 1u);
}

TEST_F(DatabaseTest, GetClassPredicates) {
  InsertPole(1, 1, 1);
  InsertPole(2, 2, 2);
  InsertPole(3, 3, 3);
  GetClassOptions options;
  options.use_buffer_pool = false;
  options.predicates.push_back(
      AttrPredicate{"pole_type", CompareOp::kGe, Value::Int(2)});
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 2u);
  options.predicates.push_back(
      AttrPredicate{"pole_type", CompareOp::kNe, Value::Int(3)});
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 1u);
}

TEST_F(DatabaseTest, GetClassStringContains) {
  ASSERT_TRUE(
      db_->Insert("Supplier", {{"supplier_name", Value::String("WoodCo")}})
          .ok());
  ASSERT_TRUE(
      db_->Insert("Supplier", {{"supplier_name", Value::String("SteelBr")}})
          .ok());
  GetClassOptions options;
  options.use_buffer_pool = false;
  options.predicates.push_back(
      AttrPredicate{"supplier_name", CompareOp::kContains,
                    Value::String("ood")});
  EXPECT_EQ(db_->GetClass("Supplier", options).value().ids.size(), 1u);
}

TEST_F(DatabaseTest, GetClassSpatialRelation) {
  InsertPole(1, 1);
  InsertPole(5, 5);
  geom::Polygon region;
  region.outer = {{0, 0}, {3, 0}, {3, 3}, {0, 3}};
  GetClassOptions options;
  options.use_buffer_pool = false;
  options.spatial = SpatialFilter{geom::Geometry::FromPolygon(region),
                                  geom::TopoRelation::kInside};
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 1u);
}

TEST_F(DatabaseTest, GetClassSubclasses) {
  ClassDef special("SpecialPole", "");
  special.set_parent("Pole");
  ASSERT_TRUE(db_->RegisterClass(std::move(special)).ok());
  InsertPole(1, 1);
  ASSERT_TRUE(db_->Insert("SpecialPole",
                          {{"pole_location",
                            Value::MakeGeometry(PointGeom(2, 2))}})
                  .ok());
  GetClassOptions options;
  options.use_buffer_pool = false;
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 1u);
  options.include_subclasses = true;
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 2u);
}

TEST_F(DatabaseTest, GetClassLimit) {
  for (int i = 0; i < 10; ++i) InsertPole(i, i);
  GetClassOptions options;
  options.use_buffer_pool = false;
  options.limit = 4;
  EXPECT_EQ(db_->GetClass("Pole", options).value().ids.size(), 4u);
}

TEST_F(DatabaseTest, BufferPoolServesRepeatsAndInvalidatesOnWrite) {
  InsertPole(1, 1);
  GetClassOptions options;  // use_buffer_pool defaults true.
  auto first = db_->GetClass("Pole", options);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().from_cache);
  auto second = db_->GetClass("Pole", options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().from_cache);
  EXPECT_EQ(second.value().ids, first.value().ids);
  InsertPole(2, 2);  // Invalidates the class prefix.
  auto third = db_->GetClass("Pole", options);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.value().from_cache);
  EXPECT_EQ(third.value().ids.size(), 2u);
}

TEST_F(DatabaseTest, GetValueAndAttribute) {
  // Exercises the deprecated compatibility shim on purpose — it must
  // keep working until it is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const ObjectId id = InsertPole(1, 2, 7);
  auto obj = db_->GetValue(id);
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value()->class_name(), "Pole");
  EXPECT_EQ(db_->GetAttributeValue(id, "pole_type").value().int_value(), 7);
  EXPECT_TRUE(db_->GetAttributeValue(id, "bogus").status().IsNotFound());
  EXPECT_TRUE(db_->GetValue(12345).status().IsNotFound());
#pragma GCC diagnostic pop
}

TEST_F(DatabaseTest, MethodsInvokeRegisteredImpl) {
  auto supplier =
      db_->Insert("Supplier", {{"supplier_name", Value::String("WoodCo")}});
  ASSERT_TRUE(supplier.ok());
  const ObjectId pole = InsertPole(1, 1);
  ASSERT_TRUE(db_->Update(pole, "pole_supplier",
                          Value::Ref(supplier.value(), "Supplier"))
                  .ok());
  ASSERT_TRUE(
      db_->RegisterMethod(
             "Pole",
             MethodDef{"get_supplier_name", "",
                       [](const GeoDatabase& db, const ObjectInstance& obj)
                           -> agis::Result<Value> {
                         const Value& ref = obj.Get("pole_supplier");
                         const Snapshot snap = db.OpenSnapshot();
                         const ObjectInstance* s =
                             db.FindObjectAt(snap, ref.ref_value().id);
                         return s->Get("supplier_name");
                       }})
          .ok());
  EXPECT_EQ(db_->CallMethod(pole, "get_supplier_name").value().string_value(),
            "WoodCo");
  EXPECT_TRUE(db_->CallMethod(pole, "nope").status().IsNotFound());
}

TEST_F(DatabaseTest, EventsEmittedInOrder) {
  struct Recorder : DbEventSink {
    std::vector<std::string> events;
    agis::Status OnBeforeEvent(const DbEvent& e) override {
      events.push_back(std::string("before:") + DbEventKindName(e.kind));
      return agis::Status::OK();
    }
    void OnAfterEvent(const DbEvent& e) override {
      events.push_back(std::string("after:") + DbEventKindName(e.kind));
    }
  };
  Recorder recorder;
  db_->AddEventSink(&recorder);
  const ObjectId id = InsertPole(1, 1);
  ASSERT_TRUE(db_->Update(id, "pole_type", Value::Int(2)).ok());
  ASSERT_TRUE(db_->GetSchema().ok());
  ASSERT_TRUE(db_->GetClass("Pole").ok());
  // The deprecated shim must still emit its Get_Value event.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ASSERT_TRUE(db_->GetValue(id).ok());
#pragma GCC diagnostic pop
  ASSERT_TRUE(db_->Delete(id).ok());
  db_->RemoveEventSink(&recorder);
  InsertPole(9, 9);  // Not recorded.
  EXPECT_EQ(recorder.events,
            (std::vector<std::string>{
                "before:Before_Insert", "after:After_Insert",
                "before:Before_Update", "after:After_Update",
                "after:Get_Schema", "after:Get_Class", "after:Get_Value",
                "before:Before_Delete", "after:After_Delete"}));
}

TEST_F(DatabaseTest, VetoAbortsWrites) {
  struct Veto : DbEventSink {
    agis::Status OnBeforeEvent(const DbEvent& e) override {
      if (e.kind == DbEventKind::kBeforeUpdate) {
        return agis::Status::ConstraintViolation("frozen");
      }
      return agis::Status::OK();
    }
  };
  Veto veto;
  const ObjectId id = InsertPole(1, 1, 3);
  db_->AddEventSink(&veto);
  EXPECT_TRUE(
      db_->Update(id, "pole_type", Value::Int(9)).IsConstraintViolation());
  EXPECT_EQ(db_->FindObjectAt(db_->OpenSnapshot(), id)
                ->Get("pole_type")
                .int_value(),
            3);
  EXPECT_EQ(db_->stats().vetoed_writes, 1u);
  db_->RemoveEventSink(&veto);
}

TEST_F(DatabaseTest, StatsCountPrimitives) {
  InsertPole(1, 1);
  ASSERT_TRUE(db_->GetSchema().ok());
  ASSERT_TRUE(db_->GetClass("Pole").ok());
  ASSERT_TRUE(db_->GetClass("Pole").ok());
  EXPECT_EQ(db_->stats().get_schema_calls, 1u);
  EXPECT_EQ(db_->stats().get_class_calls, 2u);
  EXPECT_EQ(db_->stats().inserts, 1u);
}

TEST_F(DatabaseTest, ScanExtentWithWindow) {
  InsertPole(1, 1);
  InsertPole(100, 100);
  auto all = db_->ScanExtent("Pole");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 2u);
  auto windowed =
      db_->ScanExtent("Pole", geom::BoundingBox(0, 0, 10, 10));
  ASSERT_TRUE(windowed.ok());
  EXPECT_EQ(windowed.value().size(), 1u);
  EXPECT_TRUE(db_->ScanExtent("Nope").status().IsNotFound());
}

TEST_F(DatabaseTest, CacheKeysDistinguishOptionVariants) {
  // Distinct query options must never share a buffer-pool key, or a
  // cached result would serve the wrong query.
  std::vector<GetClassOptions> variants;
  variants.emplace_back();
  GetClassOptions with_sub;
  with_sub.include_subclasses = true;
  variants.push_back(with_sub);
  GetClassOptions with_window;
  with_window.window = geom::BoundingBox(0, 0, 10, 10);
  variants.push_back(with_window);
  GetClassOptions other_window;
  other_window.window = geom::BoundingBox(0, 0, 10, 11);
  variants.push_back(other_window);
  GetClassOptions with_pred;
  with_pred.predicates.push_back(
      AttrPredicate{"pole_type", CompareOp::kGe, Value::Int(2)});
  variants.push_back(with_pred);
  GetClassOptions other_pred = with_pred;
  other_pred.predicates[0].operand = Value::Int(3);
  variants.push_back(other_pred);
  GetClassOptions with_limit;
  with_limit.limit = 5;
  variants.push_back(with_limit);
  GetClassOptions with_spatial;
  with_spatial.spatial =
      SpatialFilter{PointGeom(1, 1), geom::TopoRelation::kIntersects};
  variants.push_back(with_spatial);

  std::set<std::string> keys;
  for (const GetClassOptions& options : variants) {
    EXPECT_TRUE(keys.insert(options.CacheKeySuffix()).second)
        << "duplicate key: " << options.CacheKeySuffix();
    // Deterministic.
    EXPECT_EQ(options.CacheKeySuffix(), options.CacheKeySuffix());
  }
}

// The three index kinds agree on GetClass results.
class IndexKindTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(IndexKindTest, WindowQueriesAgree) {
  DatabaseOptions options;
  options.index_kind = GetParam();
  options.world = geom::BoundingBox(0, 0, 100, 100);
  GeoDatabase db("s", options);
  ClassDef cls("P", "");
  ASSERT_TRUE(cls.AddAttribute(AttributeDef::Geometry("loc")).ok());
  ASSERT_TRUE(db.RegisterClass(std::move(cls)).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("P", {{"loc", Value::MakeGeometry(PointGeom(
                                            (i * 7) % 100, (i * 13) % 100))}})
                    .ok());
  }
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.window = geom::BoundingBox(20, 20, 60, 60);
  auto result = db.GetClass("P", q);
  ASSERT_TRUE(result.ok());
  size_t expected = 0;
  const auto all_ids = db.ScanExtent("P");
  ASSERT_TRUE(all_ids.ok());
  const Snapshot snap = db.OpenSnapshot();
  for (ObjectId id : all_ids.value()) {
    const auto& g = db.FindObjectAt(snap, id)->Get("loc").geometry_value();
    if (g.Bounds().Intersects(*q.window)) ++expected;
  }
  EXPECT_EQ(result.value().ids.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IndexKindTest,
                         ::testing::Values(IndexKind::kRTree, IndexKind::kGrid,
                                           IndexKind::kLinearScan));

}  // namespace
}  // namespace agis::geodb
