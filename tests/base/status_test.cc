#include "base/status.h"

#include <gtest/gtest.h>

namespace agis {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_EQ(Status::NotFound("thing").message(), "thing");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("pole 7").ToString(), "NotFound: pole 7");
  EXPECT_EQ(Status::ConstraintViolation("x").ToString(),
            "ConstraintViolation: x");
}

TEST(Status, WithContextPrepends) {
  const Status s = Status::NotFound("attr").WithContext("class Pole");
  EXPECT_EQ(s.message(), "class Pole: attr");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  AGIS_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedMacro(int x) {
  AGIS_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(Result, MacrosPropagateErrors) {
  EXPECT_EQ(ChainedMacro(5).value(), 11);
  EXPECT_TRUE(ChainedMacro(-5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace agis
