#include "base/logging.h"

#include <gtest/gtest.h>

#include "base/status.h"

namespace agis {
namespace {

TEST(Logging, LevelGate) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging is a no-op (nothing observable to assert
  // beyond not crashing; the gate is the contract).
  AGIS_LOG(Debug) << "suppressed";
  AGIS_LOG(Info) << "suppressed";
  SetLogLevel(saved);
}

TEST(LoggingDeath, CheckFailureAborts) {
  EXPECT_DEATH({ AGIS_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(LoggingDeath, CheckOkAbortsOnError) {
  EXPECT_DEATH({ AGIS_CHECK_OK(Status::NotFound("gone")); }, "NotFound");
}

TEST(LoggingDeath, ResultValueOnErrorAborts) {
  EXPECT_DEATH(
      {
        Result<int> r = Status::Internal("boom");
        (void)r.value();
      },
      "Result::value\\(\\) on error");
}

TEST(Logging, CheckPassesSilently) {
  AGIS_CHECK(true) << "never evaluated";
  AGIS_CHECK_OK(Status::OK());
}

}  // namespace
}  // namespace agis
