#include "base/task_scheduler.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace agis {
namespace {

TEST(TaskSchedulerTest, RunsSubmittedTasks) {
  TaskScheduler scheduler(2);
  std::atomic<int> done{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 64; ++i) {
    group.Run([&done] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

TEST(TaskSchedulerTest, DefaultSizingCreatesAtLeastTwoWorkers) {
  TaskScheduler scheduler;
  EXPECT_GE(scheduler.num_threads(), 2u);
  EXPECT_LE(scheduler.num_threads(), 16u);
}

TEST(TaskSchedulerTest, GroupWaitsOnlyOnItsOwnTasks) {
  TaskScheduler scheduler(2);
  // A slow task outside the group must not hold up the group's Wait.
  // Wait until a worker owns it before submitting the group: helping
  // runs whatever is queued, so the main thread must not be able to
  // pick the blocker up itself.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> slow_done{false};
  scheduler.Submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
    slow_done.store(true);
  });
  while (!started.load()) std::this_thread::yield();
  std::atomic<int> done{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 8; ++i) {
    group.Run([&done] { done.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 8);
  EXPECT_FALSE(slow_done.load());
  release.store(true);
}

TEST(TaskSchedulerTest, NestedGroupsDoNotDeadlock) {
  // More nesting levels than workers: only help-while-waiting keeps
  // this from deadlocking on a blocked worker set.
  TaskScheduler scheduler(2);
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    TaskGroup inner(&scheduler);
    for (int i = 0; i < 2; ++i) {
      inner.Run([&spawn, depth] { spawn(depth - 1); });
    }
    inner.Wait();
  };
  TaskGroup group(&scheduler);
  group.Run([&spawn] { spawn(6); });
  group.Wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskSchedulerTest, WaitOnEmptyGroupReturnsImmediately) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  group.Wait();  // No tasks; must not block.
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskSchedulerTest, GroupDestructorWaits) {
  TaskScheduler scheduler(2);
  std::atomic<int> done{0};
  {
    TaskGroup group(&scheduler);
    for (int i = 0; i < 32; ++i) {
      group.Run([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(TaskSchedulerTest, StatsCountExecutedTasks) {
  TaskScheduler scheduler(2);
  TaskGroup group(&scheduler);
  for (int i = 0; i < 100; ++i) {
    group.Run([] {});
  }
  group.Wait();
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.num_threads, 2u);
  // Submitted from a non-worker thread: everything goes through the
  // injector; executed = injector pops + steals + helped tasks.
  EXPECT_EQ(stats.tasks_executed, 100u);
  EXPECT_EQ(stats.injector_submits, 100u);
  EXPECT_GE(stats.max_queue_depth, 1u);
}

TEST(TaskSchedulerTest, WorkerSubmittedTasksUseLocalDeque) {
  TaskScheduler scheduler(2);
  std::atomic<bool> outer_done{false};
  // Fire-and-forget so the main thread never helps (helping could run
  // the outer task on this non-worker thread, which would legally
  // route the nested Runs through the injector).
  scheduler.Submit([&] {
    // Runs on a worker: nested Run goes to the worker's own deque.
    TaskGroup inner(&scheduler);
    for (int i = 0; i < 16; ++i) {
      inner.Run([] {});
    }
    inner.Wait();
    outer_done.store(true, std::memory_order_release);
  });
  while (!outer_done.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  const SchedulerStats stats = scheduler.stats();
  // Only the outer task went through the injector.
  EXPECT_EQ(stats.injector_submits, 1u);
  EXPECT_GE(stats.tasks_executed, 17u);
}

TEST(TaskSchedulerTest, TasksSpreadAcrossWorkers) {
  TaskScheduler scheduler(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  TaskGroup group(&scheduler);
  for (int i = 0; i < 256; ++i) {
    group.Run([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(std::this_thread::get_id());
    });
  }
  group.Wait();
  // The calling thread may help, so >= 2 distinct executors overall.
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace agis
