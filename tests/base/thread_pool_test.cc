#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include <gtest/gtest.h>

namespace agis {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.tasks_completed(), 100u);
}

TEST(ThreadPoolTest, WaitBlocksUntilSlowTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 4);
}

TEST(ThreadPoolTest, WorkSpreadsAcrossWorkers) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&mutex, &seen] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.Wait();
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  // size_t{0} disambiguates against the borrowed-scheduler ctor (a
  // literal 0 is also a null pointer constant).
  ThreadPool pool(size_t{0});
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace agis
