// Multi-threaded stress tests for the shared work-stealing scheduler.
// Everything here races threads on purpose; the binary carries the
// `concurrency` label so the TSan CI job picks it up.

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "gtest/gtest.h"

namespace agis {
namespace {

TEST(TaskSchedulerConcurrencyTest, ConcurrentSubmitFromManyThreads) {
  TaskScheduler scheduler(4);
  constexpr int kThreads = 8;
  constexpr int kTasksPerThread = 200;
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      TaskGroup group(&scheduler);
      for (int i = 0; i < kTasksPerThread; ++i) {
        group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
      group.Wait();
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(done.load(), kThreads * kTasksPerThread);
  EXPECT_EQ(scheduler.stats().tasks_executed,
            static_cast<uint64_t>(kThreads * kTasksPerThread));
}

TEST(TaskSchedulerConcurrencyTest, NestedGroupsUnderContention) {
  // Several external threads each drive a 3-deep nested fan-out on a
  // 2-worker scheduler: without help-while-waiting this configuration
  // deadlocks (more simultaneous waits than workers).
  TaskScheduler scheduler(2);
  constexpr int kThreads = 4;
  std::atomic<int> leaves{0};
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TaskGroup inner(&scheduler);
    for (int i = 0; i < 3; ++i) {
      inner.Run([&spawn, depth] { spawn(depth - 1); });
    }
    inner.Wait();
  };
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&spawn] { spawn(3); });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(leaves.load(), kThreads * 27);
}

TEST(TaskSchedulerConcurrencyTest, SkewedWorkloadGetsStolen) {
  // One task fans out a large burst from inside a worker (all pushed
  // to that worker's own deque); the other workers must steal to
  // finish it. With enough repetitions at least one steal happens.
  TaskScheduler scheduler(4);
  std::atomic<int> done{0};
  constexpr int kBurst = 512;
  TaskGroup group(&scheduler);
  group.Run([&] {
    TaskGroup inner(&scheduler);
    for (int i = 0; i < kBurst; ++i) {
      inner.Run([&done] {
        // Enough work that the burst outlives the owner's LIFO pops.
        volatile int sink = 0;
        for (int j = 0; j < 1000; ++j) sink = sink + j;
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    inner.Wait();
  });
  group.Wait();
  EXPECT_EQ(done.load(), kBurst);
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.tasks_executed, static_cast<uint64_t>(kBurst) + 1);
  // The burst went to one worker's deque; its peak depth shows up.
  EXPECT_GT(stats.max_queue_depth, 1u);
}

TEST(TaskSchedulerConcurrencyTest, DestructionDrainsTasksInFlight) {
  // Destroying the scheduler with queued fire-and-forget tasks must
  // run them all, not drop them: the destructor drains.
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  {
    TaskScheduler scheduler(3);
    for (int i = 0; i < kTasks; ++i) {
      scheduler.Submit([&done] {
        volatile int sink = 0;
        for (int j = 0; j < 500; ++j) sink = sink + j;
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(TaskSchedulerConcurrencyTest, GroupsAreIndependentUnderLoad) {
  // Two groups interleaved on one scheduler: each Wait returns with
  // its own count complete regardless of the other group's progress.
  TaskScheduler scheduler(4);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread ta([&] {
    for (int round = 0; round < 20; ++round) {
      TaskGroup group(&scheduler);
      for (int i = 0; i < 32; ++i) {
        group.Run([&a] { a.fetch_add(1, std::memory_order_relaxed); });
      }
      group.Wait();
      ASSERT_EQ(a.load() % 32, 0);
    }
  });
  std::thread tb([&] {
    for (int round = 0; round < 20; ++round) {
      TaskGroup group(&scheduler);
      for (int i = 0; i < 32; ++i) {
        group.Run([&b] { b.fetch_add(1, std::memory_order_relaxed); });
      }
      group.Wait();
      ASSERT_EQ(b.load() % 32, 0);
    }
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.load(), 20 * 32);
  EXPECT_EQ(b.load(), 20 * 32);
}

TEST(TaskSchedulerConcurrencyTest, SharedPoolAdaptersDoNotInterfere) {
  // Two ThreadPool adapters borrowing one scheduler: each pool's
  // Wait() covers its own submissions only, and completed counts are
  // per-pool.
  TaskScheduler scheduler(4);
  ThreadPool pool_a(&scheduler);
  ThreadPool pool_b(&scheduler);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  for (int i = 0; i < 100; ++i) {
    pool_a.Submit([&a] { a.fetch_add(1, std::memory_order_relaxed); });
    pool_b.Submit([&b] { b.fetch_add(1, std::memory_order_relaxed); });
  }
  pool_a.Wait();
  EXPECT_EQ(a.load(), 100);
  EXPECT_EQ(pool_a.tasks_completed(), 100u);
  pool_b.Wait();
  EXPECT_EQ(b.load(), 100);
  EXPECT_EQ(pool_b.tasks_completed(), 100u);
}

TEST(TaskSchedulerConcurrencyTest, StatsReadableWhileRunning) {
  TaskScheduler scheduler(4);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const SchedulerStats stats = scheduler.stats();
      ASSERT_LE(stats.injector_pops, stats.injector_submits);
    }
  });
  for (int round = 0; round < 50; ++round) {
    TaskGroup group(&scheduler);
    for (int i = 0; i < 16; ++i) {
      group.Run([] {
        volatile int sink = 0;
        for (int j = 0; j < 200; ++j) sink = sink + j;
      });
    }
    group.Wait();
  }
  stop.store(true);
  reader.join();
}

}  // namespace
}  // namespace agis
