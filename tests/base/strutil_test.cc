#include "base/strutil.h"

#include <gtest/gtest.h>

#include "base/context.h"
#include "base/rng.h"

namespace agis {
namespace {

TEST(Split, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, DropsEmptyPieces) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(CaseConversion, AsciiOnly) {
  EXPECT_EQ(ToLower("GeT_ScHeMa"), "get_schema");
  EXPECT_EQ(ToUpper("point"), "POINT");
  EXPECT_TRUE(EqualsIgnoreCase("Null", "NULL"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(PadAndRepeat, Widths) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
}

TEST(StrCat, MixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(DoubleToString, ShortRepresentation) {
  EXPECT_EQ(DoubleToString(2.0), "2");
  EXPECT_EQ(DoubleToString(0.5), "0.5");
  EXPECT_EQ(DoubleToString(-3.25), "-3.25");
}

TEST(UserContext, ToStringShowsWildcards) {
  UserContext ctx;
  EXPECT_EQ(ctx.ToString(), "<*, *, *>");
  ctx.user = "juliano";
  ctx.application = "pole_manager";
  EXPECT_EQ(ctx.ToString(), "<juliano, *, pole_manager>");
  ctx.extras["scale"] = "1:5000";
  EXPECT_EQ(ctx.ToString(), "<juliano, *, pole_manager, scale=1:5000>");
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    const double d = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
    const int64_t n = rng.UniformInt(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

}  // namespace
}  // namespace agis
