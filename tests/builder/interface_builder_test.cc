// Tests for the generic interface builder (Figure 1): default window
// composition (Figure 4) and payload-driven deviation (Figure 7),
// independent of how customizations were selected.

#include "builder/interface_builder.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "base/strutil.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::builder {
namespace {

using active::AttributeCustomization;
using active::SchemaDisplayMode;
using active::WindowCustomization;
using uilib::InterfaceObject;

class InterfaceBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<geodb::GeoDatabase>("phone_net");
    workload::PhoneNetConfig config;
    config.num_poles = 40;
    ASSERT_TRUE(workload::BuildPhoneNetwork(db_.get(), config).ok());
    ASSERT_TRUE(library_.RegisterKernelPrototypes().ok());
    ASSERT_TRUE(RegisterStandardGisPrototypes(&library_).ok());
    ASSERT_TRUE(styles_.RegisterStandardFormats().ok());
    builder_ = std::make_unique<GenericInterfaceBuilder>(db_.get(), &library_,
                                                         &styles_);
    ctx_.user = "juliano";
    ctx_.application = "pole_manager";
  }

  geodb::ObjectId AnyPoleId() {
    geodb::GetClassOptions options;
    options.use_buffer_pool = false;
    auto result = db_->GetClass("Pole", options, ctx_);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result->ids.empty());
    return result->ids.front();
  }

  std::unique_ptr<geodb::GeoDatabase> db_;
  uilib::InterfaceObjectLibrary library_;
  carto::StyleRegistry styles_;
  std::unique_ptr<GenericInterfaceBuilder> builder_;
  UserContext ctx_;
};

TEST_F(InterfaceBuilderTest, DefaultSchemaWindowListsUserClasses) {
  auto window = builder_->BuildSchemaWindow(nullptr, ctx_);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->GetProperty(uilib::kPropWindowType),
            uilib::kWindowSchema);
  EXPECT_NE((*window)->GetProperty(uilib::kPropHidden), "true");
  InterfaceObject* list = (*window)->FindDescendant("classes");
  ASSERT_NE(list, nullptr);
  const std::vector<std::string> classes = uilib::GetListItems(*list);
  EXPECT_EQ(classes.size(), 6u);
  for (const std::string& name : classes) {
    EXPECT_NE(name.substr(0, 2), "__") << name;
  }
}

TEST_F(InterfaceBuilderTest, NullSchemaModeHidesWindow) {
  WindowCustomization cust;
  cust.schema_mode = SchemaDisplayMode::kNull;
  auto window = builder_->BuildSchemaWindow(&cust, ctx_);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->GetProperty(uilib::kPropHidden), "true");
}

TEST_F(InterfaceBuilderTest, HierarchySchemaModeRendersTextTree) {
  WindowCustomization cust;
  cust.schema_mode = SchemaDisplayMode::kHierarchy;
  auto window = builder_->BuildSchemaWindow(&cust, ctx_);
  ASSERT_TRUE(window.ok());
  InterfaceObject* hierarchy = (*window)->FindDescendant("hierarchy");
  ASSERT_NE(hierarchy, nullptr);
  EXPECT_NE(hierarchy->GetProperty(uilib::kPropValue).find("Pole"),
            std::string::npos);
}

TEST_F(InterfaceBuilderTest, WindowCarriesContextProperty) {
  auto window = builder_->BuildSchemaWindow(nullptr, ctx_);
  ASSERT_TRUE(window.ok());
  const std::string context = (*window)->GetProperty("context");
  EXPECT_NE(context.find("user=juliano"), std::string::npos);
  EXPECT_NE(context.find("application=pole_manager"), std::string::npos);
}

TEST_F(InterfaceBuilderTest, DefaultClassWindowUsesStandardControlAndStyle) {
  auto window = builder_->BuildClassSetWindow("Pole", nullptr, ctx_);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->GetProperty(uilib::kPropClass), "Pole");
  InterfaceObject* control = (*window)->FindDescendant("control_Pole");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->GetProperty("prototype"), "class_control");
  InterfaceObject* presentation = (*window)->FindDescendant("presentation");
  ASSERT_NE(presentation, nullptr);
  EXPECT_EQ(presentation->GetProperty(uilib::kPropStyle), "default");
  EXPECT_GT(std::stoul(presentation->GetProperty(uilib::kPropFeatureCount)),
            0u);
  EXPECT_EQ(presentation->GetProperty("generalized_points_removed"), "0");
  EXPECT_FALSE(presentation->GetProperty(uilib::kPropContent).empty());
  EXPECT_FALSE(presentation->GetProperty(uilib::kPropSvg).empty());
}

TEST_F(InterfaceBuilderTest, CustomizedClassWindowOverridesControlAndFormat) {
  WindowCustomization cust;
  cust.target_class = "Pole";
  cust.control_widget = "poleWidget";
  cust.presentation_format = "pointFormat";
  auto window = builder_->BuildClassSetWindow("Pole", &cust, ctx_);
  ASSERT_TRUE(window.ok());
  InterfaceObject* control = (*window)->FindDescendant("control_Pole");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->GetProperty("prototype"), "poleWidget");
  InterfaceObject* presentation = (*window)->FindDescendant("presentation");
  ASSERT_NE(presentation, nullptr);
  EXPECT_EQ(presentation->GetProperty(uilib::kPropStyle), "pointFormat");
}

TEST_F(InterfaceBuilderTest, UnknownClassIsNotFound) {
  auto window = builder_->BuildClassSetWindow("NoSuchClass", nullptr, ctx_);
  EXPECT_FALSE(window.ok());
  EXPECT_TRUE(window.status().IsNotFound());
}

TEST_F(InterfaceBuilderTest, QueryLimitBoundsPresentationIds) {
  BuildOptions options;
  options.query.limit = 5;
  options.query.use_buffer_pool = false;
  auto window = builder_->BuildClassSetWindow("Pole", nullptr, ctx_, options);
  ASSERT_TRUE(window.ok());
  InterfaceObject* presentation = (*window)->FindDescendant("presentation");
  ASSERT_NE(presentation, nullptr);
  EXPECT_LE(std::stoul(presentation->GetProperty(uilib::kPropFeatureCount)),
            5u);
}

TEST_F(InterfaceBuilderTest, GeneralizationReportsRemovedPoints) {
  BuildOptions coarse;
  coarse.generalize = true;
  coarse.map_width = 8;
  coarse.map_height = 4;
  coarse.query.use_buffer_pool = false;
  auto window = builder_->BuildClassSetWindow("Duct", nullptr, ctx_, coarse);
  ASSERT_TRUE(window.ok());
  InterfaceObject* presentation = (*window)->FindDescendant("presentation");
  ASSERT_NE(presentation, nullptr);
  // The property is always present and numeric; on a coarse raster the
  // polyline class should actually shed vertices.
  const size_t removed =
      std::stoul(presentation->GetProperty("generalized_points_removed"));
  EXPECT_GT(removed, 0u);
}

TEST_F(InterfaceBuilderTest, DefaultInstanceWindowHasOneRowPerAttribute) {
  const geodb::ObjectId id = AnyPoleId();
  auto window = builder_->BuildInstanceWindow(id, nullptr, ctx_);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->GetProperty(uilib::kPropObject), agis::StrCat(id));
  InterfaceObject* rows = (*window)->FindChild("attributes");
  ASSERT_NE(rows, nullptr);
  // Inherited attributes (NetworkElement.status) come before Pole's own.
  InterfaceObject* status = rows->FindChild("attr_status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->GetProperty(uilib::kPropLabel), "status");
  InterfaceObject* type_row = rows->FindChild("attr_pole_type");
  ASSERT_NE(type_row, nullptr);
  InterfaceObject* value = type_row->FindChild("attr_value");
  ASSERT_NE(value, nullptr);
  EXPECT_FALSE(value->GetProperty(uilib::kPropValue).empty());
}

TEST_F(InterfaceBuilderTest, ComposedSourcesFillCustomWidget) {
  WindowCustomization cust;
  cust.target_class = "Pole";
  AttributeCustomization attr;
  attr.attribute = "pole_composition";
  attr.widget = "composed_text";
  attr.sources = {"pole.material", "pole.diameter", "pole.height"};
  cust.attributes.push_back(attr);
  auto window = builder_->BuildInstanceWindow(AnyPoleId(), &cust, ctx_);
  ASSERT_TRUE(window.ok());
  InterfaceObject* row = (*window)->FindDescendant("attr_pole_composition");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->GetProperty("prototype"), "composed_text");
  const std::string value = row->GetProperty(uilib::kPropValue);
  ASSERT_FALSE(value.empty());
  // The composed_text prototype separates parts with " / ".
  EXPECT_NE(value.find(" / "), std::string::npos);
}

TEST_F(InterfaceBuilderTest, MethodCallSourceResolvesThroughDatabase) {
  WindowCustomization cust;
  cust.target_class = "Pole";
  AttributeCustomization attr;
  attr.attribute = "pole_supplier";
  attr.widget = "text_field";
  attr.sources = {"get_supplier_name(pole_supplier)"};
  cust.attributes.push_back(attr);
  auto window = builder_->BuildInstanceWindow(AnyPoleId(), &cust, ctx_);
  ASSERT_TRUE(window.ok());
  InterfaceObject* row = (*window)->FindDescendant("attr_pole_supplier");
  ASSERT_NE(row, nullptr);
  const std::string value = row->GetProperty(uilib::kPropValue);
  EXPECT_FALSE(value.empty());
  // Resolved via CallMethod, not the raw reference display ("Supplier#N").
  EXPECT_EQ(value.find("Supplier#"), std::string::npos);
}

TEST_F(InterfaceBuilderTest, HiddenAttributeIsOmitted) {
  WindowCustomization cust;
  cust.target_class = "Pole";
  AttributeCustomization attr;
  attr.attribute = "pole_location";
  attr.hidden = true;
  cust.attributes.push_back(attr);
  auto window = builder_->BuildInstanceWindow(AnyPoleId(), &cust, ctx_);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ((*window)->FindDescendant("attr_pole_location"), nullptr);
  EXPECT_NE((*window)->FindDescendant("attr_pole_type"), nullptr);
}

TEST_F(InterfaceBuilderTest, UnknownInstanceIsNotFound) {
  auto window = builder_->BuildInstanceWindow(999999, nullptr, ctx_);
  EXPECT_FALSE(window.ok());
  EXPECT_TRUE(window.status().IsNotFound());
}

}  // namespace
}  // namespace agis::builder
