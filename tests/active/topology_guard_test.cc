#include "active/topology_guard.h"

#include <gtest/gtest.h>

#include "active/db_bridge.h"
#include "geom/geometry.h"

namespace agis::active {
namespace {

using geodb::AttributeDef;
using geodb::ClassDef;
using geodb::Value;

geodb::Value PointValue(double x, double y) {
  return Value::MakeGeometry(geom::Geometry::FromPoint({x, y}));
}

geodb::Value RectValue(double x0, double y0, double x1, double y1) {
  geom::Polygon poly;
  poly.outer = {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}};
  return Value::MakeGeometry(geom::Geometry::FromPolygon(poly));
}

class TopologyGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<geodb::GeoDatabase>("net");
    engine_ = std::make_unique<RuleEngine>();
    bridge_ = std::make_unique<DbEventBridge>(engine_.get());
    db_->AddEventSink(bridge_.get());
    guard_ = std::make_unique<TopologyGuard>(db_.get(), engine_.get());

    ClassDef region("Region", "");
    ASSERT_TRUE(region.AddAttribute(AttributeDef::Geometry("area")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(region)).ok());
    ClassDef pole("Pole", "");
    ASSERT_TRUE(pole.AddAttribute(AttributeDef::Geometry("location")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(pole)).ok());
    ClassDef note("Note", "non-spatial");
    ASSERT_TRUE(note.AddAttribute(AttributeDef::String("text")).ok());
    ASSERT_TRUE(db_->RegisterClass(std::move(note)).ok());

    ASSERT_TRUE(
        db_->Insert("Region", {{"area", RectValue(0, 0, 100, 100)}}).ok());
  }

  void TearDown() override { db_->RemoveEventSink(bridge_.get()); }

  std::unique_ptr<geodb::GeoDatabase> db_;
  std::unique_ptr<RuleEngine> engine_;
  std::unique_ptr<DbEventBridge> bridge_;
  std::unique_ptr<TopologyGuard> guard_;
};

TEST_F(TopologyGuardTest, ValidatesConstraintDefinitions) {
  TopologyConstraint c;
  c.name = "bad_subject";
  c.subject_class = "Nope";
  c.object_class = "Region";
  EXPECT_TRUE(guard_->AddConstraint(c).status().IsNotFound());
  c.name = "bad_object";
  c.subject_class = "Pole";
  c.object_class = "Nope";
  EXPECT_TRUE(guard_->AddConstraint(c).status().IsNotFound());
  c.name = "non_spatial";
  c.subject_class = "Note";
  c.object_class = "Region";
  EXPECT_TRUE(guard_->AddConstraint(c).status().IsFailedPrecondition());
}

TEST_F(TopologyGuardTest, ExistsInsideConstraintOnInsert) {
  TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "Region";
  c.quantifier = TopologyConstraint::Quantifier::kExists;
  ASSERT_EQ(guard_->AddConstraint(c).value().size(), 2u);

  // Inside the region: accepted.
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(50, 50)}}).ok());
  // Outside every region: vetoed.
  auto bad = db_->Insert("Pole", {{"location", PointValue(500, 500)}});
  EXPECT_TRUE(bad.status().IsConstraintViolation());
  EXPECT_EQ(db_->ExtentSize("Pole"), 1u);
  EXPECT_EQ(guard_->violations_detected(), 1u);
}

TEST_F(TopologyGuardTest, ExistsConstraintOnUpdate) {
  TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "Region";
  c.quantifier = TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());
  auto pole = db_->Insert("Pole", {{"location", PointValue(50, 50)}});
  ASSERT_TRUE(pole.ok());
  // Move outside: vetoed, value unchanged.
  EXPECT_TRUE(db_->Update(pole.value(), "location", PointValue(900, 900))
                  .IsConstraintViolation());
  EXPECT_EQ(db_->FindObjectAt(db_->OpenSnapshot(), pole.value())
                ->Get("location"),
            PointValue(50, 50));
  // Move within: accepted.
  EXPECT_TRUE(db_->Update(pole.value(), "location", PointValue(10, 10)).ok());
}

TEST_F(TopologyGuardTest, ForAllDisjointWithClearance) {
  TopologyConstraint c;
  c.name = "pole_spacing";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kDisjoint;
  c.object_class = "Pole";
  c.quantifier = TopologyConstraint::Quantifier::kForAll;
  c.min_distance = 10.0;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());

  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(0, 0)}}).ok());
  // Too close to the first pole.
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(5, 0)}})
                  .status()
                  .IsConstraintViolation());
  // Far enough.
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(20, 0)}}).ok());
  EXPECT_EQ(db_->ExtentSize("Pole"), 2u);
}

TEST_F(TopologyGuardTest, WarnModeAllowsViolations) {
  TopologyConstraint c;
  c.name = "soft_spacing";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kDisjoint;
  c.object_class = "Pole";
  c.min_distance = 10.0;
  c.on_violation = TopologyConstraint::OnViolation::kWarn;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(0, 0)}}).ok());
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(1, 0)}}).ok());
  EXPECT_EQ(db_->ExtentSize("Pole"), 2u);
  EXPECT_EQ(guard_->violations_detected(), 1u);
  EXPECT_EQ(guard_->warnings_issued(), 1u);
}

TEST_F(TopologyGuardTest, RemoveConstraintDisablesChecks) {
  TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "Region";
  c.quantifier = TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());
  EXPECT_EQ(guard_->RemoveConstraint("pole_in_region"), 2u);
  EXPECT_TRUE(db_->Insert("Pole", {{"location", PointValue(999, 999)}}).ok());
  EXPECT_TRUE(guard_->constraints().empty());
}

TEST_F(TopologyGuardTest, CheckAllAuditsExistingData) {
  // Insert violating data first, then install the constraint.
  ASSERT_TRUE(db_->Insert("Pole", {{"location", PointValue(500, 500)}}).ok());
  ASSERT_TRUE(db_->Insert("Pole", {{"location", PointValue(50, 50)}}).ok());
  TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "Region";
  c.quantifier = TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());
  const auto violations = guard_->CheckAll();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint, "pole_in_region");
  EXPECT_FALSE(violations[0].ToString().empty());
}

TEST_F(TopologyGuardTest, NonGeometryWritesPassThrough) {
  TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "Region";
  c.quantifier = TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(guard_->AddConstraint(c).ok());
  auto pole = db_->Insert("Pole", {{"location", PointValue(50, 50)}});
  ASSERT_TRUE(pole.ok());
  // Notes have no geometry; constraint rules are filtered by class.
  EXPECT_TRUE(db_->Insert("Note", {{"text", Value::String("hi")}}).ok());
}

}  // namespace
}  // namespace agis::active
