// Tests for the engine's memoized customization cache: hit/miss/
// eviction accounting, generation-stamped invalidation on every
// mutation path, cached-vs-uncached equivalence under both conflict
// policies, and thread safety of the shared-lock read path.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "active/engine.h"
#include "base/strutil.h"
#include "base/thread_pool.h"

namespace agis::active {
namespace {

EcaRule CustomizationRule(const std::string& name, const std::string& cls,
                          const ContextPattern& condition,
                          const std::string& format,
                          const std::string& provenance = "") {
  EcaRule rule;
  rule.name = name;
  rule.family = RuleFamily::kCustomization;
  rule.event_name = kEventGetClass;
  if (!cls.empty()) rule.param_filters["class"] = cls;
  rule.condition = condition;
  rule.provenance = provenance;
  WindowCustomization payload;
  payload.target_class = cls;
  payload.presentation_format = format;
  payload.control_widget = agis::StrCat(name, "_control");
  rule.customization_action =
      [payload](const Event&) -> agis::Result<WindowCustomization> {
    return payload;
  };
  return rule;
}

Event ClassEvent(const std::string& cls, const std::string& user) {
  Event event;
  event.name = kEventGetClass;
  event.params["class"] = cls;
  event.context.user = user;
  event.context.application = "explore";
  return event;
}

TEST(EngineCacheTest, RepeatedLookupHitsTheCache) {
  RuleEngine engine;
  ContextPattern juliano;
  juliano.user = "juliano";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("r1", "Pole", juliano, "pointFormat"))
          .ok());

  const Event event = ClassEvent("Pole", "juliano");
  auto first = engine.GetCustomization(event);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);

  auto second = engine.GetCustomization(event);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  // The cache serves results, it does not re-fire the rule.
  EXPECT_EQ(engine.stats().customization_rules_fired, 1u);
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->presentation_format, "pointFormat");
}

TEST(EngineCacheTest, NoMatchIsAlsoMemoized) {
  RuleEngine engine;
  ContextPattern anyone;
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("r1", "Pole", anyone, "pointFormat"))
          .ok());
  const Event other = ClassEvent("Duct", "juliano");
  ASSERT_TRUE(engine.GetCustomization(other).ok());
  auto again = engine.GetCustomization(other);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->has_value());
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST(EngineCacheTest, EventsWithoutRulesSkipTheCacheEntirely) {
  RuleEngine engine;
  Event event;
  event.name = "Get_Value";
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.stats().cache_misses, 0u);
  EXPECT_EQ(engine.stats().events_processed, 2u);
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(EngineCacheTest, AddRuleInvalidates) {
  RuleEngine engine;
  ContextPattern anyone;
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("base", "Pole", anyone, "defaultFormat"))
          .ok());
  const Event event = ClassEvent("Pole", "juliano");
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  EXPECT_EQ(engine.stats().cache_hits, 1u);

  // A more specific rule must win immediately, not after the stale
  // entry ages out.
  ContextPattern juliano;
  juliano.user = "juliano";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("mine", "Pole", juliano, "pointFormat"))
          .ok());
  auto after = engine.GetCustomization(event);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->presentation_format, "pointFormat");
  EXPECT_EQ(engine.stats().cache_misses, 2u);
}

TEST(EngineCacheTest, RemoveRuleInvalidates) {
  RuleEngine engine;
  ContextPattern anyone;
  ContextPattern juliano;
  juliano.user = "juliano";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("base", "Pole", anyone, "defaultFormat"))
          .ok());
  auto specific =
      engine.AddRule(CustomizationRule("mine", "Pole", juliano, "pointFormat"));
  ASSERT_TRUE(specific.ok());

  const Event event = ClassEvent("Pole", "juliano");
  auto before = engine.GetCustomization(event);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->presentation_format, "pointFormat");

  ASSERT_TRUE(engine.RemoveRule(*specific).ok());
  auto after = engine.GetCustomization(event);
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->has_value());
  EXPECT_EQ((*after)->presentation_format, "defaultFormat");
}

TEST(EngineCacheTest, RemoveByProvenanceInvalidates) {
  RuleEngine engine;
  ContextPattern anyone;
  ContextPattern juliano;
  juliano.user = "juliano";
  ASSERT_TRUE(engine
                  .AddRule(CustomizationRule("base", "Pole", anyone,
                                             "defaultFormat", "directive_a"))
                  .ok());
  ASSERT_TRUE(engine
                  .AddRule(CustomizationRule("mine", "Pole", juliano,
                                             "pointFormat", "directive_b"))
                  .ok());
  const Event event = ClassEvent("Pole", "juliano");
  auto before = engine.GetCustomization(event);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->presentation_format, "pointFormat");

  EXPECT_EQ(engine.RemoveRulesByProvenance("directive_b"), 1u);
  auto after = engine.GetCustomization(event);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->presentation_format, "defaultFormat");
  EXPECT_EQ(engine.CountRulesByProvenance("directive_b"), 0u);
  EXPECT_EQ(engine.CountRulesByProvenance("directive_a"), 1u);
}

TEST(EngineCacheTest, LruEvictionIsCountedAndBounded) {
  RuleEngine engine;
  engine.set_cache_capacity(2);
  ContextPattern anyone;
  for (const char* cls : {"Pole", "Duct", "Cable"}) {
    ASSERT_TRUE(
        engine.AddRule(CustomizationRule(cls, cls, anyone, "pointFormat"))
            .ok());
  }
  for (const char* cls : {"Pole", "Duct", "Cable"}) {
    ASSERT_TRUE(engine.GetCustomization(ClassEvent(cls, "u")).ok());
  }
  EXPECT_EQ(engine.cache_size(), 2u);
  EXPECT_EQ(engine.stats().cache_evictions, 1u);
  // Pole was least recently used and got evicted: re-resolving it is a
  // miss, while Cable is still resident.
  ASSERT_TRUE(engine.GetCustomization(ClassEvent("Cable", "u")).ok());
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  ASSERT_TRUE(engine.GetCustomization(ClassEvent("Pole", "u")).ok());
  EXPECT_EQ(engine.stats().cache_misses, 4u);
}

TEST(EngineCacheTest, GenerationBumpSweepsStaleEntriesBeforeLiveOnes) {
  RuleEngine engine;
  engine.set_cache_capacity(4);
  ContextPattern anyone;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine
                    .AddRule(CustomizationRule(agis::StrCat("r", i),
                                               agis::StrCat("c", i), anyone,
                                               "pointFormat"))
                    .ok());
  }
  // Fill the cache to capacity under the current generation.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.GetCustomization(ClassEvent(agis::StrCat("c", i), "u"))
                    .ok());
  }
  EXPECT_EQ(engine.cache_size(), 4u);

  // Any rule mutation bumps the generation: all four resident entries
  // are now stale. They still occupy capacity slots.
  ContextPattern juliano;
  juliano.user = "juliano";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("bump", "c0", juliano, "lineFormat"))
          .ok());

  // Resolve a fresh working set of four. The first over-capacity
  // insert must sweep the stale residue instead of spending LRU
  // evictions on it — the live set fits entirely.
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(engine.GetCustomization(ClassEvent(agis::StrCat("c", i), "u"))
                    .ok());
  }
  EXPECT_EQ(engine.cache_size(), 4u);
  EXPECT_EQ(engine.stats().cache_stale_swept, 4u);
  EXPECT_EQ(engine.stats().cache_evictions, 0u);

  // Hit-rate across the bump: the whole live working set is resident,
  // so a second pass is 100% hits.
  const uint64_t hits_before = engine.stats().cache_hits;
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(engine.GetCustomization(ClassEvent(agis::StrCat("c", i), "u"))
                    .ok());
  }
  EXPECT_EQ(engine.stats().cache_hits, hits_before + 4);
}

TEST(EngineCacheTest, ZeroCapacityDisablesMemoization) {
  RuleEngine engine;
  engine.set_cache_capacity(0);
  ContextPattern anyone;
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("r", "Pole", anyone, "pointFormat"))
          .ok());
  const Event event = ClassEvent("Pole", "u");
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  ASSERT_TRUE(engine.GetCustomization(event).ok());
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.cache_size(), 0u);
  EXPECT_EQ(engine.stats().customization_rules_fired, 2u);
}

/// Installs a mixed population and returns probe events spanning
/// cached/uncached, matching/non-matching, and conflicting cases.
void PopulateMixed(RuleEngine* engine) {
  for (int i = 0; i < 40; ++i) {
    ContextPattern condition;
    switch (i % 3) {
      case 0:
        condition.user = agis::StrCat("user_", i % 5);
        break;
      case 1:
        condition.category = agis::StrCat("cat_", i % 5);
        break;
      default:
        break;  // Generic.
    }
    ASSERT_TRUE(engine
                    ->AddRule(CustomizationRule(
                        agis::StrCat("rule_", i),
                        agis::StrCat("class_", i % 4), condition,
                        agis::StrCat("format_", i)))
                    .ok());
  }
}

std::vector<Event> ProbeEvents() {
  std::vector<Event> events;
  for (int round = 0; round < 3; ++round) {  // Repeats exercise hits.
    for (int c = 0; c < 5; ++c) {
      for (int u = 0; u < 3; ++u) {
        events.push_back(ClassEvent(agis::StrCat("class_", c),
                                    agis::StrCat("user_", u)));
      }
    }
  }
  return events;
}

class EquivalencePolicyTest : public ::testing::TestWithParam<ConflictPolicy> {
};

TEST_P(EquivalencePolicyTest, CachedAndUncachedResultsAreIdentical) {
  RuleEngine cached(GetParam());
  RuleEngine uncached(GetParam());
  uncached.set_cache_capacity(0);
  PopulateMixed(&cached);
  PopulateMixed(&uncached);

  for (const Event& event : ProbeEvents()) {
    auto a = cached.GetCustomization(event);
    auto b = uncached.GetCustomization(event);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->has_value(), b->has_value()) << event.ToString();
    if (a->has_value()) {
      EXPECT_EQ((*a)->ToString(), (*b)->ToString()) << event.ToString();
    }
  }
  EXPECT_GT(cached.stats().cache_hits, 0u);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
  EXPECT_LT(cached.stats().customization_rules_fired,
            uncached.stats().customization_rules_fired);
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, EquivalencePolicyTest,
                         ::testing::Values(ConflictPolicy::kMostSpecific,
                                           ConflictPolicy::kExecuteAllMerge));

TEST(EngineCacheTest, BatchMatchesSequentialResolution) {
  RuleEngine engine;
  PopulateMixed(&engine);
  const std::vector<Event> events = ProbeEvents();

  RuleEngine reference;
  PopulateMixed(&reference);
  agis::ThreadPool pool(4);
  auto batched = engine.GetCustomizationBatch(events, &pool);
  ASSERT_EQ(batched.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    auto expected = reference.GetCustomization(events[i]);
    ASSERT_TRUE(batched[i].ok());
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(batched[i]->has_value(), expected->has_value());
    if (expected->has_value()) {
      EXPECT_EQ((*batched[i])->ToString(), (*expected)->ToString());
    }
  }
}

TEST(EngineCacheTest, ConcurrentBatchReadsWithMutationStayCoherent) {
  RuleEngine engine;
  PopulateMixed(&engine);
  const std::vector<Event> events = ProbeEvents();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> resolved{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&engine, &events, &stop, &resolved] {
      // do-while: every reader completes at least one full pass even if
      // the mutator finishes before this thread is scheduled.
      do {
        for (const Event& event : events) {
          auto result = engine.GetCustomization(event);
          ASSERT_TRUE(result.ok());
          // Any payload must be internally consistent: the memo never
          // serves a half-written customization.
          if (result->has_value() && !(*result)->target_class.empty()) {
            ASSERT_EQ((*result)->target_class.rfind("class_", 0), 0u);
          }
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      } while (!stop.load(std::memory_order_relaxed));
    });
  }

  // Mutator: churn a rule in and out while the readers hammer.
  ContextPattern churn_ctx;
  churn_ctx.user = "user_0";
  for (int i = 0; i < 200; ++i) {
    auto id = engine.AddRule(CustomizationRule(
        "churn", "class_0", churn_ctx, agis::StrCat("churn_", i), "churn"));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.RemoveRule(*id).ok());
  }
  engine.RemoveRulesByProvenance("churn");
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(resolved.load(), 0u);
  EXPECT_EQ(engine.CountRulesByProvenance("churn"), 0u);
}

}  // namespace
}  // namespace agis::active
