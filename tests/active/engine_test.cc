#include "active/engine.h"

#include <gtest/gtest.h>

namespace agis::active {
namespace {

Event MakeEvent(const std::string& name, const std::string& user,
                const std::string& app,
                std::map<std::string, std::string> params = {}) {
  Event e;
  e.name = name;
  e.context.user = user;
  e.context.application = app;
  e.params = std::move(params);
  return e;
}

EcaRule CustomizationRule(const std::string& name,
                          const std::string& event_name,
                          ContextPattern condition,
                          const std::string& marker) {
  EcaRule rule;
  rule.name = name;
  rule.family = RuleFamily::kCustomization;
  rule.event_name = event_name;
  rule.condition = std::move(condition);
  rule.customization_action =
      [marker](const Event&) -> agis::Result<WindowCustomization> {
    WindowCustomization cust;
    cust.control_widget = marker;
    return cust;
  };
  return rule;
}

TEST(RuleEngine, RejectsRulesWithoutActions) {
  RuleEngine engine;
  EcaRule no_action;
  no_action.name = "bad";
  no_action.event_name = "E";
  EXPECT_TRUE(engine.AddRule(no_action).status().IsInvalidArgument());
  EcaRule no_event = CustomizationRule("bad2", "", {}, "m");
  EXPECT_TRUE(engine.AddRule(no_event).status().IsInvalidArgument());
  EcaRule general;
  general.name = "bad3";
  general.family = RuleFamily::kGeneral;
  general.event_name = "E";
  EXPECT_TRUE(engine.AddRule(general).status().IsInvalidArgument());
}

TEST(RuleEngine, NoMatchingRuleMeansDefault) {
  RuleEngine engine;
  ContextPattern p;
  p.user = "juliano";
  ASSERT_TRUE(engine.AddRule(CustomizationRule("r", "Get_Class", p, "w")).ok());
  auto result = engine.GetCustomization(MakeEvent("Get_Class", "ana", "app"));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
  // Different event name: no match either.
  auto other = engine.GetCustomization(MakeEvent("Get_Schema", "juliano", ""));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other.value().has_value());
}

TEST(RuleEngine, MostSpecificWins) {
  RuleEngine engine;
  ContextPattern generic;
  generic.application = "app";
  ContextPattern by_category;
  by_category.category = "planner";
  by_category.application = "app";
  ContextPattern by_user;
  by_user.user = "juliano";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("g", "Get_Class", generic, "generic"))
          .ok());
  ASSERT_TRUE(engine
                  .AddRule(CustomizationRule("c", "Get_Class", by_category,
                                             "category"))
                  .ok());
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("u", "Get_Class", by_user, "user"))
          .ok());

  Event event = MakeEvent("Get_Class", "juliano", "app");
  event.context.category = "planner";
  auto result = engine.GetCustomization(event);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_value());
  EXPECT_EQ(result.value()->control_widget, "user");
  EXPECT_EQ(engine.stats().conflicts_resolved, 1u);
  EXPECT_EQ(engine.stats().customization_rules_fired, 1u);

  // Same event for another user in the category: category rule wins.
  Event other = MakeEvent("Get_Class", "maria", "app");
  other.context.category = "planner";
  EXPECT_EQ(engine.GetCustomization(other).value()->control_widget,
            "category");

  // Outside the category: generic rule.
  Event generic_event = MakeEvent("Get_Class", "bob", "app");
  EXPECT_EQ(engine.GetCustomization(generic_event).value()->control_widget,
            "generic");
}

TEST(RuleEngine, PriorityBoostBeatsSpecificity) {
  RuleEngine engine;
  ContextPattern by_user;
  by_user.user = "juliano";
  EcaRule boosted = CustomizationRule("boosted", "Get_Class", {}, "boosted");
  boosted.priority_boost = 1;
  ASSERT_TRUE(engine.AddRule(boosted).ok());
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("u", "Get_Class", by_user, "user"))
          .ok());
  EXPECT_EQ(engine.GetCustomization(MakeEvent("Get_Class", "juliano", ""))
                .value()
                ->control_widget,
            "boosted");
}

TEST(RuleEngine, TiesGoToLatestRegistration) {
  RuleEngine engine;
  ContextPattern p;
  p.user = "u";
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("old", "Get_Class", p, "old")).ok());
  ASSERT_TRUE(
      engine.AddRule(CustomizationRule("new", "Get_Class", p, "new")).ok());
  EXPECT_EQ(engine.GetCustomization(MakeEvent("Get_Class", "u", ""))
                .value()
                ->control_widget,
            "new");
  // And the old rule is reported as shadowed.
  const auto shadowed = engine.FindShadowedRules();
  ASSERT_EQ(shadowed.size(), 1u);
  EXPECT_EQ(engine.FindRule(shadowed[0].first)->name, "old");
  EXPECT_EQ(engine.FindRule(shadowed[0].second)->name, "new");
}

TEST(RuleEngine, ParamFiltersNarrowEvents) {
  RuleEngine engine;
  EcaRule rule = CustomizationRule("pole_only", "Get_Class", {}, "pole");
  rule.param_filters["class"] = "Pole";
  ASSERT_TRUE(engine.AddRule(rule).ok());
  EXPECT_TRUE(engine
                  .GetCustomization(MakeEvent("Get_Class", "u", "",
                                              {{"class", "Pole"}}))
                  .value()
                  .has_value());
  EXPECT_FALSE(engine
                   .GetCustomization(MakeEvent("Get_Class", "u", "",
                                               {{"class", "Duct"}}))
                   .value()
                   .has_value());
}

TEST(RuleEngine, ExecuteAllMergePolicy) {
  RuleEngine engine(ConflictPolicy::kExecuteAllMerge);
  ContextPattern generic;  // Matches everything.
  EcaRule base = CustomizationRule("base", "Get_Class", generic, "base");
  base.customization_action =
      [](const Event&) -> agis::Result<WindowCustomization> {
    WindowCustomization cust;
    cust.control_widget = "base_control";
    cust.presentation_format = "base_format";
    return cust;
  };
  ASSERT_TRUE(engine.AddRule(base).ok());
  ContextPattern by_user;
  by_user.user = "u";
  EcaRule overlay = CustomizationRule("overlay", "Get_Class", by_user, "x");
  overlay.customization_action =
      [](const Event&) -> agis::Result<WindowCustomization> {
    WindowCustomization cust;
    cust.control_widget = "user_control";  // Overrides.
    return cust;                           // Format inherited.
  };
  ASSERT_TRUE(engine.AddRule(overlay).ok());
  auto result = engine.GetCustomization(MakeEvent("Get_Class", "u", ""));
  ASSERT_TRUE(result.value().has_value());
  EXPECT_EQ(result.value()->control_widget, "user_control");
  EXPECT_EQ(result.value()->presentation_format, "base_format");
  EXPECT_EQ(engine.stats().customization_rules_fired, 2u);
}

TEST(RuleEngine, GeneralRulesAllFireAndVetoPropagates) {
  RuleEngine engine;
  int fired = 0;
  EcaRule counter;
  counter.name = "counter";
  counter.family = RuleFamily::kGeneral;
  counter.event_name = "Before_Update";
  counter.general_action = [&fired](const Event&) {
    ++fired;
    return agis::Status::OK();
  };
  ASSERT_TRUE(engine.AddRule(counter).ok());
  counter.name = "counter2";
  ASSERT_TRUE(engine.AddRule(counter).ok());
  EXPECT_TRUE(engine.FireGeneralRules(MakeEvent("Before_Update", "", "")).ok());
  EXPECT_EQ(fired, 2);

  EcaRule veto;
  veto.name = "veto";
  veto.family = RuleFamily::kGeneral;
  veto.event_name = "Before_Update";
  veto.priority_boost = 1;  // Fires first.
  veto.general_action = [](const Event&) {
    return agis::Status::ConstraintViolation("no");
  };
  ASSERT_TRUE(engine.AddRule(veto).ok());
  EXPECT_TRUE(engine.FireGeneralRules(MakeEvent("Before_Update", "", ""))
                  .IsConstraintViolation());
  EXPECT_EQ(fired, 2);  // Counters did not run after the veto.
}

TEST(RuleEngine, CascadeDepthGuard) {
  RuleEngine engine;
  EcaRule recurse;
  recurse.name = "recurse";
  recurse.family = RuleFamily::kGeneral;
  recurse.event_name = "loop";
  recurse.general_action = [&engine](const Event& e) {
    return engine.FireGeneralRules(e);
  };
  ASSERT_TRUE(engine.AddRule(recurse).ok());
  EXPECT_TRUE(engine.FireGeneralRules(MakeEvent("loop", "", ""))
                  .IsFailedPrecondition());
}

TEST(RuleEngine, RemoveRuleAndProvenance) {
  RuleEngine engine;
  EcaRule a = CustomizationRule("a", "E", {}, "a");
  a.provenance = "directive1";
  EcaRule b = CustomizationRule("b", "E", {}, "b");
  b.provenance = "directive1";
  EcaRule c = CustomizationRule("c", "E", {}, "c");
  c.provenance = "directive2";
  const RuleId id_a = engine.AddRule(a).value();
  ASSERT_TRUE(engine.AddRule(b).ok());
  ASSERT_TRUE(engine.AddRule(c).ok());
  EXPECT_EQ(engine.NumRules(), 3u);
  EXPECT_TRUE(engine.RemoveRule(id_a).ok());
  EXPECT_TRUE(engine.RemoveRule(id_a).IsNotFound());
  EXPECT_EQ(engine.RemoveRulesByProvenance("directive1"), 1u);
  EXPECT_EQ(engine.NumRules(), 1u);
  EXPECT_EQ(engine.RemoveRulesByProvenance("directive2"), 1u);
  EXPECT_FALSE(engine.GetCustomization(MakeEvent("E", "", ""))
                   .value()
                   .has_value());
}

TEST(RuleEngine, CustomizationActionErrorPropagates) {
  RuleEngine engine;
  EcaRule rule;
  rule.name = "failing";
  rule.family = RuleFamily::kCustomization;
  rule.event_name = "E";
  rule.customization_action =
      [](const Event&) -> agis::Result<WindowCustomization> {
    return agis::Status::Internal("boom");
  };
  ASSERT_TRUE(engine.AddRule(rule).ok());
  EXPECT_TRUE(engine.GetCustomization(MakeEvent("E", "", ""))
                  .status()
                  .IsInternal());
}

}  // namespace
}  // namespace agis::active
