#include "active/context_match.h"

#include <gtest/gtest.h>

namespace agis::active {
namespace {

UserContext Ctx(const std::string& user, const std::string& category,
                const std::string& application) {
  UserContext ctx;
  ctx.user = user;
  ctx.category = category;
  ctx.application = application;
  return ctx;
}

TEST(ContextPattern, EmptyMatchesEverything) {
  ContextPattern any;
  EXPECT_TRUE(any.Matches(Ctx("a", "b", "c")));
  EXPECT_TRUE(any.Matches(UserContext{}));
  EXPECT_EQ(any.Specificity(), 0);
}

TEST(ContextPattern, BoundFieldsMustMatch) {
  ContextPattern p;
  p.user = "juliano";
  p.application = "pole_manager";
  EXPECT_TRUE(p.Matches(Ctx("juliano", "anything", "pole_manager")));
  EXPECT_FALSE(p.Matches(Ctx("other", "anything", "pole_manager")));
  EXPECT_FALSE(p.Matches(Ctx("juliano", "x", "other_app")));
}

TEST(ContextPattern, ExtrasAreExactMatch) {
  ContextPattern p;
  p.extras["scale"] = "1:5000";
  UserContext ctx = Ctx("u", "c", "a");
  EXPECT_FALSE(p.Matches(ctx));
  ctx.extras["scale"] = "1:5000";
  EXPECT_TRUE(p.Matches(ctx));
  ctx.extras["scale"] = "1:10000";
  EXPECT_FALSE(p.Matches(ctx));
}

TEST(ContextPattern, SpecificityOrderingMatchesPaper) {
  // "a rule for generic users, for a particular category of users, and
  // for a particular user within the category" — progressively more
  // restrictive.
  ContextPattern generic;
  generic.application = "pole_manager";
  ContextPattern category;
  category.category = "planner";
  category.application = "pole_manager";
  ContextPattern user;
  user.user = "juliano";
  user.category = "planner";
  user.application = "pole_manager";
  EXPECT_LT(generic.Specificity(), category.Specificity());
  EXPECT_LT(category.Specificity(), user.Specificity());
}

TEST(ContextPattern, ExtrasNeverOutrankTheNamedFields) {
  // The documented weights hold for any realistic extras count (< 8):
  // an application-bound pattern beats any pile of extras.
  ContextPattern app_only;
  app_only.application = "a";
  ContextPattern many_extras;
  for (int i = 0; i < 7; ++i) {
    many_extras.extras["dim" + std::to_string(i)] = "v";
  }
  EXPECT_GT(app_only.Specificity(), many_extras.Specificity());
  // But extras do break ties between otherwise equal patterns.
  ContextPattern app_plus_extra = app_only;
  app_plus_extra.extras["scale"] = "1:5000";
  EXPECT_GT(app_plus_extra.Specificity(), app_only.Specificity());
}

TEST(ContextPattern, UserDominatesCategoryAndApplication) {
  ContextPattern just_user;
  just_user.user = "juliano";
  ContextPattern cat_app_extras;
  cat_app_extras.category = "c";
  cat_app_extras.application = "a";
  cat_app_extras.extras["scale"] = "x";
  cat_app_extras.extras["time"] = "y";
  EXPECT_GT(just_user.Specificity(), cat_app_extras.Specificity());
}

TEST(ContextPattern, StrictGenerality) {
  ContextPattern general;
  general.application = "app";
  ContextPattern specific;
  specific.user = "u";
  specific.application = "app";
  EXPECT_TRUE(general.IsStrictlyMoreGeneralThan(specific));
  EXPECT_FALSE(specific.IsStrictlyMoreGeneralThan(general));
  EXPECT_FALSE(general.IsStrictlyMoreGeneralThan(general));
  ContextPattern other_app;
  other_app.application = "other";
  EXPECT_FALSE(general.IsStrictlyMoreGeneralThan(other_app));
}

TEST(ContextPattern, ToStringUsesWildcards) {
  ContextPattern p;
  p.user = "juliano";
  EXPECT_EQ(p.ToString(), "<juliano, *, *>");
}

}  // namespace
}  // namespace agis::active
