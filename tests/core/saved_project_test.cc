// End-to-end "reopen a saved project" flow: save a customized system's
// database to text, load it into a fresh system, reload the persisted
// directives, re-register methods, and browse — the customized windows
// come back identical.

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "geodb/persist.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::core {
namespace {

TEST(SavedProject, SaveLoadReloadBrowse) {
  // ---- Session 1: build, customize, save. ----
  ActiveInterfaceSystem first("phone_net");
  workload::PhoneNetConfig config;
  config.num_poles = 20;
  ASSERT_TRUE(workload::BuildPhoneNetwork(&first.db(), config).ok());
  ASSERT_TRUE(
      first.InstallCustomization(workload::Fig6DirectiveSource()).ok());
  const std::string saved = geodb::SaveDatabaseToString(first.db());

  // ---- Session 2: a fresh system; restore the data into its DB. ----
  auto loaded = geodb::LoadDatabaseFromString(saved);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // The system owns its own database, so replay the restore into it:
  // register classes, then objects. (LoadDatabaseFromString already
  // demonstrated the format; here we restore into the system's DB.)
  ActiveInterfaceSystem second("phone_net");
  for (const std::string& cls_name : loaded.value()->schema().ClassNames()) {
    const geodb::ClassDef* cls = loaded.value()->schema().FindClass(cls_name);
    geodb::ClassDef copy(cls->name(), cls->doc());
    if (!cls->parent().empty()) copy.set_parent(cls->parent());
    for (const geodb::AttributeDef& attr : cls->attributes()) {
      ASSERT_TRUE(copy.AddAttribute(attr).ok());
    }
    ASSERT_TRUE(second.db().RegisterClass(std::move(copy)).ok());
  }
  const geodb::Snapshot loaded_snap = loaded.value()->OpenSnapshot();
  for (const std::string& cls_name : loaded.value()->schema().ClassNames()) {
    const auto ids = loaded.value()->ScanExtent(cls_name);
    ASSERT_TRUE(ids.ok());
    for (geodb::ObjectId id : ids.value()) {
      ASSERT_TRUE(second.db()
                      .RestoreObject(*loaded.value()->FindObjectAt(
                          loaded_snap, id))
                      .ok());
    }
  }
  // Methods are host code: re-register (the documented contract).
  ASSERT_TRUE(second.db()
                  .RegisterMethod(
                      "Pole",
                      geodb::MethodDef{
                          "get_supplier_name", "",
                          [](const geodb::GeoDatabase& db,
                             const geodb::ObjectInstance& pole)
                              -> agis::Result<geodb::Value> {
                            const geodb::Value& ref =
                                pole.Get("pole_supplier");
                            const geodb::Snapshot snap = db.OpenSnapshot();
                            const geodb::ObjectInstance* supplier =
                                db.FindObjectAt(snap, ref.ref_value().id);
                            return supplier->Get("supplier_name");
                          }})
                  .ok());

  // The persisted directive came along as data; reload it into rules.
  auto reloaded = second.ReloadCustomizations();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded.value(), 1u);

  // ---- Browse: the Figure 7 experience is back. ----
  UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  second.dispatcher().set_context(juliano);
  ASSERT_TRUE(second.dispatcher().OpenSchemaWindow().ok());
  const uilib::InterfaceObject* cls_window =
      second.dispatcher().FindWindow("Class set: Pole");
  ASSERT_NE(cls_window, nullptr);
  EXPECT_EQ(cls_window->FindDescendant("control_Pole")
                ->GetProperty("prototype"),
            "poleWidget");
  const auto poles = second.db().ScanExtent("Pole");
  auto instance =
      second.dispatcher().OpenInstanceWindow(poles.value().front());
  ASSERT_TRUE(instance.ok()) << instance.status();
  const uilib::InterfaceObject* supplier_row =
      instance.value()->FindDescendant("attr_pole_supplier");
  ASSERT_NE(supplier_row, nullptr);
  // The re-registered method resolves the supplier name again.
  EXPECT_EQ(supplier_row->GetProperty(uilib::kPropValue)
                .find("Supplier#"),
            std::string::npos);
}

}  // namespace
}  // namespace agis::core
