// System-level durability: OpenStorage/Checkpoint/Close on the full
// ActiveInterfaceSystem, crash-recovery of data AND customization
// directives, and the compile cache riding the recovery path.

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "workload/phone_net.h"

namespace agis::core {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "agis_sys_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Methods are host callbacks — never persisted. After recovery the
/// application re-registers them (the documented contract, same as
/// the text import path) before reloading customizations that call
/// them.
void RegisterSupplierMethod(geodb::GeoDatabase* db) {
  ASSERT_TRUE(
      db->RegisterMethod(
            "Pole",
            geodb::MethodDef{
                "get_supplier_name", "name of the pole's supplier",
                [](const geodb::GeoDatabase& inner,
                   const geodb::ObjectInstance& pole)
                    -> agis::Result<geodb::Value> {
                  const geodb::Value& ref = pole.Get("pole_supplier");
                  const geodb::Snapshot snap = inner.OpenSnapshot();
                  const geodb::ObjectInstance* supplier =
                      inner.FindObjectAt(snap, ref.ref_value().id);
                  if (supplier == nullptr) {
                    return agis::Status::NotFound("dangling supplier ref");
                  }
                  return supplier->Get("supplier_name");
                }})
          .ok());
}

TEST(DurableSystem, CheckpointCloseReopenRestoresDataAndRules) {
  const std::string dir = FreshDir("lifecycle");
  size_t poles = 0;
  size_t rules = 0;
  {
    ActiveInterfaceSystem sys("phone_net");
    ASSERT_TRUE(sys.OpenStorage(dir).ok());
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
    ASSERT_TRUE(sys.InstallCustomization(workload::Fig6DirectiveSource())
                    .ok());
    ASSERT_TRUE(
        sys.InstallCustomization(workload::PlannerDirectiveSource()).ok());
    poles = sys.db().ExtentSize("Pole");
    rules = sys.engine().NumRules();
    ASSERT_GT(poles, 0u);
    ASSERT_GT(rules, 0u);
    ASSERT_TRUE(sys.CheckpointStorage().ok());
    EXPECT_EQ(sys.storage_stats().checkpoints, 1u);
    ASSERT_TRUE(sys.CloseStorage().ok());
    EXPECT_FALSE(sys.storage_open());
  }
  ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(sys.OpenStorage(dir).ok());
  EXPECT_TRUE(sys.storage_open());
  // Data back — from the binary snapshot, not the text format.
  EXPECT_EQ(sys.db().ExtentSize("Pole"), poles);
  EXPECT_EQ(sys.StoredDirectives().size(), 2u);
  // The planner directive replayed at open; Figure 6 calls a host
  // method, so it waits for the application to re-register it.
  EXPECT_GT(sys.engine().NumRules(), 0u);
  EXPECT_LT(sys.engine().NumRules(), rules);
  RegisterSupplierMethod(&sys.db());
  auto reloaded = sys.ReloadCustomizations();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(sys.engine().NumRules(), rules);
  // The recovered system behaves: Figure 6's customization applies.
  UserContext ctx;
  ctx.user = "juliano";
  ctx.application = "pole_manager";
  sys.dispatcher().set_context(ctx);
  auto window = sys.dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(window.ok()) << window.status();
}

TEST(DurableSystem, WalOnlyRecoveryViaDestructorClose) {
  const std::string dir = FreshDir("walonly");
  size_t objects = 0;
  {
    ActiveInterfaceSystem sys("phone_net");
    ASSERT_TRUE(sys.OpenStorage(dir).ok());
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
    ASSERT_TRUE(
        sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());
    objects = sys.db().NumObjects();
    // No checkpoint, no explicit close: the destructor must sync+detach.
  }
  ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(sys.OpenStorage(dir).ok());
  EXPECT_FALSE(sys.storage()->recovery().snapshot_loaded);
  EXPECT_EQ(sys.db().NumObjects(), objects);
  EXPECT_EQ(sys.StoredDirectives().size(), 1u);
  // Figure 6 needs its host method back before its rules can load.
  EXPECT_EQ(sys.engine().NumRules(), 0u);
  RegisterSupplierMethod(&sys.db());
  auto reloaded = sys.ReloadCustomizations();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded.value(), 1u);
  EXPECT_GT(sys.engine().NumRules(), 0u);
}

TEST(DurableSystem, SyncedWritesSurviveAnInjectedCrash) {
  const std::string dir = FreshDir("crash");
  geodb::ObjectId synced_id = 0;
  {
    storage::StoreOptions options;
    options.wal.fault_plan.fail_after_bytes = 8 * 1024;
    options.wal.fault_plan.short_write = true;
    ActiveInterfaceSystem sys("phone_net");
    ASSERT_TRUE(sys.OpenStorage(dir, options).ok());
    geodb::ClassDef pole("Pole", "");
    ASSERT_TRUE(
        pole.AddAttribute(geodb::AttributeDef::Int("pole_type")).ok());
    ASSERT_TRUE(sys.db().RegisterClass(std::move(pole)).ok());
    auto id = sys.db().Insert(
        "Pole", {{"pole_type", geodb::Value::Int(42)}});
    ASSERT_TRUE(id.ok());
    synced_id = id.value();
    ASSERT_TRUE(sys.SyncStorage().ok());  // Acknowledged.
    // Keep writing until the "disk" dies, then let the system go down
    // with the latched error (destructor close fails; that is the
    // simulated crash).
    for (int i = 0; i < 5000; ++i) {
      auto extra = sys.db().Insert(
          "Pole", {{"pole_type", geodb::Value::Int(i)}});
      if (!extra.ok() || !sys.SyncStorage().ok()) break;
    }
    EXPECT_FALSE(sys.SyncStorage().ok()) << "fault plan never fired";
  }
  ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(sys.OpenStorage(dir).ok());
  const geodb::Snapshot snap = sys.db().OpenSnapshot();
  const auto* obj = sys.db().FindObjectAt(snap, synced_id);
  ASSERT_NE(obj, nullptr) << "acknowledged insert lost in the crash";
  EXPECT_EQ(obj->Get("pole_type"), geodb::Value::Int(42));
}

TEST(DurableSystem, CompileCacheSkipsParseOnReinstallAndReload) {
  ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  const std::string source = workload::Fig6DirectiveSource();

  auto first = sys.InstallCustomization(source);
  ASSERT_TRUE(first.ok());
  const auto cold = sys.compile_cache_stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_GT(cold.misses, 0u);
  EXPECT_GT(cold.entries, 0u);

  // Same text again: parse and compile are skipped (analysis still
  // runs against the live schema).
  auto canonical = sys.StoredDirectives();
  ASSERT_EQ(canonical.size(), 1u);
  EXPECT_GT(sys.UninstallCustomization(canonical[0].first), 0u);
  auto second = sys.InstallCustomization(source);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), first->size());
  EXPECT_GT(sys.compile_cache_stats().hits, cold.hits);

  // ReloadCustomizations after a rule-engine reset rides the cache too
  // (drop the live rules but keep the stored directive copy).
  EXPECT_GT(sys.engine().RemoveRulesByProvenance(canonical[0].first), 0u);
  ASSERT_EQ(sys.engine().NumRules(), 0u);
  const uint64_t before_reload = sys.compile_cache_stats().hits;
  auto reloaded = sys.ReloadCustomizations();
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value(), 1u);
  EXPECT_GT(sys.engine().NumRules(), 0u);
  EXPECT_GT(sys.compile_cache_stats().hits, before_reload);
}

TEST(DurableSystem, ZeroCapacityDisablesTheCompileCache) {
  SystemOptions options;
  options.compile_cache_capacity = 0;
  ActiveInterfaceSystem sys("phone_net", options);
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  ASSERT_TRUE(
      sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());
  auto canonical = sys.StoredDirectives();
  ASSERT_EQ(canonical.size(), 1u);
  EXPECT_GT(sys.UninstallCustomization(canonical[0].first), 0u);
  ASSERT_TRUE(
      sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());
  EXPECT_EQ(sys.compile_cache_stats().hits, 0u);
  EXPECT_EQ(sys.compile_cache_stats().entries, 0u);
}

TEST(DurableSystem, StorageCallsWithoutOpenAreCleanErrors) {
  ActiveInterfaceSystem sys("phone_net");
  EXPECT_FALSE(sys.storage_open());
  EXPECT_EQ(sys.storage(), nullptr);
  EXPECT_FALSE(sys.SyncStorage().ok());
  EXPECT_FALSE(sys.CheckpointStorage().ok());
  EXPECT_TRUE(sys.CloseStorage().ok());  // Closing nothing is fine.
  EXPECT_EQ(sys.storage_stats().wal_records_appended, 0u);
}

}  // namespace
}  // namespace agis::core
