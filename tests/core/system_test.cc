// Integration tests for the assembled architecture (experiment F1):
// the Figure 1 event flow, directive lifecycle, and the pieces acting
// together.

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "custlang/parser.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::core {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
  }

  UserContext Juliano() {
    UserContext ctx;
    ctx.user = "juliano";
    ctx.application = "pole_manager";
    return ctx;
  }

  std::unique_ptr<ActiveInterfaceSystem> sys_;
};

TEST_F(SystemTest, InstallRejectsBadDirectives) {
  EXPECT_TRUE(sys_->InstallCustomization("not a directive")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(
      sys_->InstallCustomization("For user u class Missing display")
          .status()
          .IsFailedPrecondition());
  EXPECT_EQ(sys_->engine().NumRules(), 0u);
}

TEST_F(SystemTest, InstallUninstallLifecycle) {
  auto installed = sys_->InstallCustomization(workload::Fig6DirectiveSource());
  ASSERT_TRUE(installed.ok());
  EXPECT_EQ(sys_->engine().NumRules(), 3u);
  auto parsed = custlang::ParseDirective(workload::Fig6DirectiveSource());
  EXPECT_EQ(sys_->UninstallCustomization(parsed->CanonicalName()), 3u);
  EXPECT_EQ(sys_->engine().NumRules(), 0u);
  // After uninstall, juliano sees the generic interface again.
  sys_->dispatcher().set_context(Juliano());
  auto window = sys_->dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(window.ok());
  EXPECT_NE(window.value()->GetProperty(uilib::kPropHidden), "true");
}

TEST_F(SystemTest, EventFlowReachesEngineViaBridge) {
  // Figure 1: db events are intercepted by the active mechanism.
  ASSERT_TRUE(sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  const uint64_t before = sys_->engine().stats().events_processed;
  sys_->dispatcher().set_context(Juliano());
  ASSERT_TRUE(sys_->dispatcher().OpenSchemaWindow().ok());
  EXPECT_GT(sys_->engine().stats().events_processed, before);
  EXPECT_GE(sys_->engine().stats().customization_rules_fired, 2u);
}

TEST_F(SystemTest, AccessCheckerGatesInstallation) {
  sys_->set_access_checker(
      [](const custlang::Directive& d, const std::string&) {
        return d.user != "intern";
      });
  EXPECT_TRUE(
      sys_->InstallCustomization("For user intern class Pole display")
          .status()
          .IsPermissionDenied());
  EXPECT_TRUE(
      sys_->InstallCustomization("For user chief class Pole display").ok());
}

TEST_F(SystemTest, SpecificityAcrossInstalledDirectives) {
  // Category-level and user-level directives both installed; the
  // user-level one wins for juliano, the category one for maria.
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::PlannerDirectiveSource()).ok());
  ASSERT_TRUE(sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());

  UserContext juliano = Juliano();
  juliano.category = "network_planner";
  sys_->dispatcher().set_context(juliano);
  auto jw = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(jw.ok());
  EXPECT_EQ(jw.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "pointFormat");  // Fig6 user-level rule.

  UserContext maria;
  maria.user = "maria";
  maria.category = "network_planner";
  maria.application = "pole_manager";
  sys_->dispatcher().set_context(maria);
  auto mw = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(mw.ok());
  EXPECT_EQ(mw.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "crossFormat");  // Planner category rule.
}

TEST_F(SystemTest, TopologyGuardIntegratesWithWrites) {
  active::TopologyConstraint c;
  c.name = "pole_in_region";
  c.subject_class = "Pole";
  c.relation = geom::TopoRelation::kInside;
  c.object_class = "ServiceRegion";
  c.quantifier = active::TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(sys_->topology().AddConstraint(c).ok());
  // Strictly inside a service region: ok. (Exactly (500,500) would sit
  // on the shared region boundary, which is Touches, not Inside.)
  EXPECT_TRUE(sys_->db()
                  .Insert("Pole",
                          {{"pole_location",
                            geodb::Value::MakeGeometry(
                                geom::Geometry::FromPoint({400, 400}))}})
                  .ok());
  // Far outside every region: vetoed through the whole stack.
  EXPECT_TRUE(sys_->db()
                  .Insert("Pole",
                          {{"pole_location",
                            geodb::Value::MakeGeometry(
                                geom::Geometry::FromPoint({5000, 5000}))}})
                  .status()
                  .IsConstraintViolation());
}

TEST_F(SystemTest, BufferPoolSpeedsRepeatedBrowsing) {
  sys_->dispatcher().set_context(Juliano());
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  const auto& stats1 = sys_->db().buffer_pool().stats();
  const uint64_t misses_after_first = stats1.misses;
  ASSERT_TRUE(sys_->dispatcher().OpenClassWindow("Pole").ok());
  EXPECT_GT(sys_->db().buffer_pool().stats().hits, 0u);
  EXPECT_EQ(sys_->db().buffer_pool().stats().misses, misses_after_first);
}

TEST_F(SystemTest, ExecuteAllMergePolicyOption) {
  SystemOptions options;
  options.conflict_policy = active::ConflictPolicy::kExecuteAllMerge;
  ActiveInterfaceSystem merged("phone_net", options);
  ASSERT_TRUE(workload::BuildPhoneNetwork(&merged.db()).ok());
  // Generic rule sets the control widget; user rule sets the format.
  ASSERT_TRUE(merged
                  .InstallCustomization(
                      "For application pole_manager class Pole display "
                      "control as poleWidget")
                  .ok());
  ASSERT_TRUE(merged
                  .InstallCustomization(
                      "For user juliano class Pole display "
                      "presentation as crossFormat")
                  .ok());
  UserContext ctx;
  ctx.user = "juliano";
  ctx.application = "pole_manager";
  merged.dispatcher().set_context(ctx);
  auto window = merged.dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  // Under merge policy both layers apply.
  EXPECT_EQ(window.value()
                ->FindDescendant("control_Pole")
                ->GetProperty("prototype"),
            "poleWidget");
  EXPECT_EQ(window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "crossFormat");
}

TEST_F(SystemTest, BareSystemWithoutStandardLibrary) {
  SystemOptions options;
  options.register_standard_library = false;
  ActiveInterfaceSystem bare("empty");
  // Standard prototypes registered by default elsewhere; here verify
  // the configured system still assembles and browses.
  ActiveInterfaceSystem configured("empty2", options);
  EXPECT_EQ(configured.library().NumPrototypes(), 0u);
  EXPECT_EQ(configured.styles().NumStyles(), 0u);
}

}  // namespace
}  // namespace agis::core
