// Simulation interaction mode: hypothetical edits over the base
// database, what-if rendering, constraint pre-checks, commit/discard.

#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "workload/phone_net.h"

namespace agis::core {
namespace {

geodb::Value PointValue(double x, double y) {
  return geodb::Value::MakeGeometry(geom::Geometry::FromPoint({x, y}));
}

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<ActiveInterfaceSystem>("phone_net");
    workload::PhoneNetConfig config;
    config.num_poles = 10;
    config.num_cables = 0;
    config.num_ducts = 0;
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db(), config).ok());
  }
  std::unique_ptr<ActiveInterfaceSystem> sys_;
};

TEST_F(ScenarioTest, HypotheticalEditsDoNotTouchTheBase) {
  ScenarioSandbox scenario(&sys_->db());
  const size_t base_poles = sys_->db().ExtentSize("Pole");

  auto id = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(10, 10)},
               {"pole_type", geodb::Value::Int(9)}});
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_GE(id.value(), ScenarioSandbox::kProvisionalBase);
  EXPECT_EQ(sys_->db().ExtentSize("Pole"), base_poles);

  const auto poles = sys_->db().ScanExtent("Pole");
  ASSERT_TRUE(scenario
                  .HypotheticalUpdate(poles.value()[0], "pole_type",
                                      geodb::Value::Int(7))
                  .ok());
  const geodb::Snapshot snap = sys_->db().OpenSnapshot();
  EXPECT_NE(sys_->db().FindObjectAt(snap, poles.value()[0])->Get("pole_type"),
            geodb::Value::Int(7));
  ASSERT_TRUE(scenario.HypotheticalDelete(poles.value()[1]).ok());
  EXPECT_NE(sys_->db().FindObjectAt(snap, poles.value()[1]), nullptr);
  EXPECT_EQ(scenario.PendingOps(), 3u);
}

TEST_F(ScenarioTest, EffectiveStateMergesOverlay) {
  ScenarioSandbox scenario(&sys_->db());
  const auto poles = sys_->db().ScanExtent("Pole");
  const geodb::ObjectId base_id = poles.value()[0];
  ASSERT_TRUE(
      scenario.HypotheticalUpdate(base_id, "pole_type", geodb::Value::Int(42))
          .ok());
  auto effective = scenario.EffectiveObject(base_id);
  ASSERT_TRUE(effective.has_value());
  EXPECT_EQ(effective->Get("pole_type"), geodb::Value::Int(42));
  // Untouched attributes come from the base.
  EXPECT_EQ(effective->Get("pole_location"),
            sys_->db()
                .FindObjectAt(sys_->db().OpenSnapshot(), base_id)
                ->Get("pole_location"));

  ASSERT_TRUE(scenario.HypotheticalDelete(poles.value()[1]).ok());
  EXPECT_FALSE(scenario.EffectiveObject(poles.value()[1]).has_value());

  auto inserted = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(5, 5)}});
  ASSERT_TRUE(inserted.ok());
  auto extent = scenario.EffectiveExtent("Pole");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent.value().size(), poles.value().size());  // -1 +1.
}

TEST_F(ScenarioTest, ValidationMirrorsTheSchema) {
  ScenarioSandbox scenario(&sys_->db());
  EXPECT_TRUE(scenario.HypotheticalInsert("Nope", {}).status().IsNotFound());
  EXPECT_TRUE(scenario
                  .HypotheticalInsert("Pole", {{"bogus", geodb::Value::Int(1)}})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(scenario
                  .HypotheticalInsert(
                      "Pole", {{"pole_type", geodb::Value::String("x")}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(scenario.HypotheticalUpdate(999999, "pole_type",
                                          geodb::Value::Int(1))
                  .IsNotFound());
  EXPECT_TRUE(scenario.HypotheticalDelete(999999).IsNotFound());
}

TEST_F(ScenarioTest, WhatIfRenderingHighlightsHypotheses) {
  ScenarioSandbox scenario(&sys_->db());
  ASSERT_TRUE(scenario
                  .HypotheticalInsert("Pole",
                                      {{"pole_location", PointValue(500, 500)}})
                  .ok());
  auto render = scenario.RenderWhatIf("Pole", sys_->styles(), 40, 15);
  ASSERT_TRUE(render.ok()) << render.status();
  // Base poles render 'o' (defaultFormat), the hypothesis '@'.
  EXPECT_NE(render.value().find('o'), std::string::npos);
  EXPECT_NE(render.value().find('@'), std::string::npos);
  EXPECT_TRUE(scenario.RenderWhatIf("Supplier", sys_->styles())
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(ScenarioTest, ConstraintPreChecksFlagViolations) {
  active::TopologyConstraint inside;
  inside.name = "pole_in_region";
  inside.subject_class = "Pole";
  inside.relation = geom::TopoRelation::kInside;
  inside.object_class = "ServiceRegion";
  inside.quantifier = active::TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(sys_->topology().AddConstraint(inside).ok());

  ScenarioSandbox scenario(&sys_->db(), &sys_->topology());
  ASSERT_TRUE(scenario
                  .HypotheticalInsert("Pole",
                                      {{"pole_location", PointValue(100, 100)}})
                  .ok());
  auto bad = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(9999, 9999)}});
  ASSERT_TRUE(bad.ok());  // Recording succeeds; the *check* flags it.
  const auto violations = scenario.CheckConstraints();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].first, bad.value());
  EXPECT_TRUE(violations[0].second.IsConstraintViolation());
}

TEST_F(ScenarioTest, CommitAppliesThroughTheGuardedWritePath) {
  active::TopologyConstraint inside;
  inside.name = "pole_in_region";
  inside.subject_class = "Pole";
  inside.relation = geom::TopoRelation::kInside;
  inside.object_class = "ServiceRegion";
  inside.quantifier = active::TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(sys_->topology().AddConstraint(inside).ok());

  ScenarioSandbox scenario(&sys_->db(), &sys_->topology());
  const size_t base_poles = sys_->db().ExtentSize("Pole");
  auto good = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(100, 100)}});
  auto bad = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(9999, 9999)}});
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  // Update the good provisional pole before commit.
  ASSERT_TRUE(scenario
                  .HypotheticalUpdate(good.value(), "pole_type",
                                      geodb::Value::Int(3))
                  .ok());

  auto outcome = scenario.Commit();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->applied, 2u);  // Insert + update.
  ASSERT_EQ(outcome->rejected.size(), 1u);
  EXPECT_TRUE(outcome->rejected[0].second.IsConstraintViolation());
  EXPECT_EQ(sys_->db().ExtentSize("Pole"), base_poles + 1);
  // The committed pole carries the scenario's update, under its real id.
  const geodb::ObjectId real_id = outcome->id_mapping.at(good.value());
  EXPECT_EQ(sys_->db()
                .FindObjectAt(sys_->db().OpenSnapshot(), real_id)
                ->Get("pole_type"),
            geodb::Value::Int(3));
  EXPECT_EQ(scenario.PendingOps(), 0u);
}

TEST_F(ScenarioTest, UpdateOfRejectedInsertIsReportedNotApplied) {
  active::TopologyConstraint inside;
  inside.name = "pole_in_region";
  inside.subject_class = "Pole";
  inside.relation = geom::TopoRelation::kInside;
  inside.object_class = "ServiceRegion";
  inside.quantifier = active::TopologyConstraint::Quantifier::kExists;
  ASSERT_TRUE(sys_->topology().AddConstraint(inside).ok());

  ScenarioSandbox scenario(&sys_->db(), &sys_->topology());
  auto bad = scenario.HypotheticalInsert(
      "Pole", {{"pole_location", PointValue(9999, 9999)}});
  ASSERT_TRUE(bad.ok());
  ASSERT_TRUE(scenario
                  .HypotheticalUpdate(bad.value(), "pole_type",
                                      geodb::Value::Int(1))
                  .ok());
  auto outcome = scenario.Commit();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->applied, 0u);
  EXPECT_EQ(outcome->rejected.size(), 2u);
}

TEST_F(ScenarioTest, DiscardDropsEverything) {
  ScenarioSandbox scenario(&sys_->db());
  ASSERT_TRUE(scenario
                  .HypotheticalInsert("Pole",
                                      {{"pole_location", PointValue(1, 1)}})
                  .ok());
  const size_t base_poles = sys_->db().ExtentSize("Pole");
  scenario.Discard();
  EXPECT_EQ(scenario.PendingOps(), 0u);
  auto extent = scenario.EffectiveExtent("Pole");
  EXPECT_EQ(extent.value().size(), base_poles);
}

}  // namespace
}  // namespace agis::core
