// Directive persistence: installed directives are stored as database
// objects and can be reloaded after a rule-engine reset.

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "custlang/parser.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sys_ = std::make_unique<ActiveInterfaceSystem>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(&sys_->db()).ok());
  }
  std::unique_ptr<ActiveInterfaceSystem> sys_;
};

TEST_F(PersistenceTest, InstalledDirectivesAreStoredInTheDatabase) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  const auto stored = sys_->StoredDirectives();
  ASSERT_EQ(stored.size(), 1u);
  EXPECT_EQ(stored[0].first,
            "For user=juliano application=pole_manager schema=phone_net");
  EXPECT_NE(stored[0].second.find("poleWidget"), std::string::npos);
  // The storage class exists in the DB.
  EXPECT_TRUE(sys_->db().schema().HasClass(kDirectiveClassName));
  EXPECT_EQ(sys_->db().ExtentSize(kDirectiveClassName), 1u);
}

TEST_F(PersistenceTest, ReinstallReplacesTheStoredCopy) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  EXPECT_EQ(sys_->StoredDirectives().size(), 1u);
  EXPECT_EQ(sys_->db().ExtentSize(kDirectiveClassName), 1u);
}

TEST_F(PersistenceTest, UninstallRemovesTheStoredCopy) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  auto parsed = custlang::ParseDirective(workload::Fig6DirectiveSource());
  EXPECT_EQ(sys_->UninstallCustomization(parsed->CanonicalName()), 3u);
  EXPECT_TRUE(sys_->StoredDirectives().empty());
}

TEST_F(PersistenceTest, ReloadRestoresRulesAfterEngineWipe) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::Fig6DirectiveSource()).ok());
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::PlannerDirectiveSource()).ok());
  ASSERT_EQ(sys_->engine().NumRules(), 6u);

  // Simulate an engine reset (e.g. a new session): wipe all rules but
  // keep the database.
  auto fig6 = custlang::ParseDirective(workload::Fig6DirectiveSource());
  auto planner = custlang::ParseDirective(workload::PlannerDirectiveSource());
  sys_->engine().RemoveRulesByProvenance(fig6->CanonicalName());
  sys_->engine().RemoveRulesByProvenance(planner->CanonicalName());
  ASSERT_EQ(sys_->engine().NumRules(), 0u);

  auto reloaded = sys_->ReloadCustomizations();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded.value(), 2u);
  EXPECT_EQ(sys_->engine().NumRules(), 6u);

  // The reloaded rules behave identically.
  UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  sys_->dispatcher().set_context(juliano);
  auto window = sys_->dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "pointFormat");
  // Reload is idempotent.
  EXPECT_EQ(sys_->ReloadCustomizations().value(), 0u);
}

TEST_F(PersistenceTest, SystemClassHiddenFromSchemaWindows) {
  ASSERT_TRUE(
      sys_->InstallCustomization(workload::PlannerDirectiveSource()).ok());
  UserContext ctx;
  ctx.user = "anybody";
  sys_->dispatcher().set_context(ctx);
  auto window = sys_->dispatcher().OpenSchemaWindow();
  ASSERT_TRUE(window.ok());
  auto* list = window.value()->FindDescendant("classes");
  ASSERT_NE(list, nullptr);
  for (const std::string& item : uilib::GetListItems(*list)) {
    EXPECT_NE(item, kDirectiveClassName);
  }
  EXPECT_EQ(uilib::GetListItems(*list).size(), 6u);
}

TEST_F(PersistenceTest, PersistenceCanBeDisabled) {
  SystemOptions options;
  options.persist_directives = false;
  ActiveInterfaceSystem sys("phone_net", options);
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  ASSERT_TRUE(
      sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());
  EXPECT_TRUE(sys.StoredDirectives().empty());
  EXPECT_FALSE(sys.db().schema().HasClass(kDirectiveClassName));
}

}  // namespace
}  // namespace agis::core
