#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "workload/environmental.h"
#include "workload/phone_net.h"
#include "workload/synthetic.h"

namespace agis::workload {
namespace {

TEST(PhoneNet, BuildsFigure5SchemaExactly) {
  geodb::GeoDatabase db("phone_net");
  ASSERT_TRUE(BuildPhoneNetwork(&db).ok());
  const geodb::ClassDef* pole = db.schema().FindClass("Pole");
  ASSERT_NE(pole, nullptr);
  EXPECT_EQ(pole->parent(), "NetworkElement");

  // Figure 5's attributes, in order.
  const std::vector<std::string> expected = {
      "pole_type",     "pole_composition", "pole_supplier",
      "pole_location", "pole_picture",     "pole_historic"};
  ASSERT_EQ(pole->attributes().size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(pole->attributes()[i].name, expected[i]);
  }
  // pole_composition: tuple(material, diameter, height).
  const geodb::AttributeDef* comp = pole->FindAttribute("pole_composition");
  EXPECT_EQ(comp->type, geodb::AttrType::kTuple);
  ASSERT_EQ(comp->tuple_fields.size(), 3u);
  EXPECT_EQ(comp->tuple_fields[0].name, "pole_material");
  // pole_supplier: Supplier ref; pole_location: geometry;
  // pole_picture: bitmap; pole_historic: text.
  EXPECT_EQ(pole->FindAttribute("pole_supplier")->ref_class, "Supplier");
  EXPECT_EQ(pole->FindAttribute("pole_location")->type,
            geodb::AttrType::kGeometry);
  EXPECT_EQ(pole->FindAttribute("pole_picture")->type, geodb::AttrType::kBlob);
  EXPECT_EQ(pole->FindAttribute("pole_historic")->type,
            geodb::AttrType::kText);
  // Figure 5's method.
  EXPECT_NE(db.schema().FindMethodOf("Pole", "get_supplier_name"), nullptr);
}

TEST(PhoneNet, PopulationMatchesConfig) {
  geodb::GeoDatabase db("phone_net");
  PhoneNetConfig config;
  config.num_poles = 30;
  config.num_ducts = 5;
  config.num_suppliers = 3;
  config.num_regions = 4;
  ASSERT_TRUE(BuildPhoneNetwork(&db, config).ok());
  EXPECT_EQ(db.ExtentSize("Pole"), 30u);
  EXPECT_EQ(db.ExtentSize("Duct"), 5u);
  EXPECT_EQ(db.ExtentSize("Supplier"), 3u);
  EXPECT_EQ(db.ExtentSize("ServiceRegion"), 4u);
  EXPECT_GT(db.ExtentSize("Cable"), 0u);
}

TEST(PhoneNet, DeterministicUnderSeed) {
  geodb::GeoDatabase a("phone_net");
  geodb::GeoDatabase b("phone_net");
  PhoneNetConfig config;
  config.seed = 99;
  config.num_poles = 20;
  ASSERT_TRUE(BuildPhoneNetwork(&a, config).ok());
  ASSERT_TRUE(BuildPhoneNetwork(&b, config).ok());
  const auto ids_a = a.ScanExtent("Pole").value();
  const auto ids_b = b.ScanExtent("Pole").value();
  ASSERT_EQ(ids_a.size(), ids_b.size());
  const geodb::Snapshot snap_a = a.OpenSnapshot();
  const geodb::Snapshot snap_b = b.OpenSnapshot();
  for (size_t i = 0; i < ids_a.size(); ++i) {
    EXPECT_EQ(a.FindObjectAt(snap_a, ids_a[i])->Get("pole_location"),
              b.FindObjectAt(snap_b, ids_b[i])->Get("pole_location"));
  }
}

TEST(PhoneNet, GetSupplierNameMethodWorks) {
  geodb::GeoDatabase db("phone_net");
  ASSERT_TRUE(BuildPhoneNetwork(&db).ok());
  const auto poles = db.ScanExtent("Pole").value();
  auto name = db.CallMethod(poles.front(), "get_supplier_name");
  ASSERT_TRUE(name.ok()) << name.status();
  EXPECT_FALSE(name.value().string_value().empty());
}

TEST(PhoneNet, EveryPoleLiesInSomeRegion) {
  geodb::GeoDatabase db("phone_net");
  ASSERT_TRUE(BuildPhoneNetwork(&db).ok());
  const auto regions = db.ScanExtent("ServiceRegion").value();
  const auto poles = db.ScanExtent("Pole").value();
  const geodb::Snapshot snap = db.OpenSnapshot();
  for (geodb::ObjectId pole_id : poles) {
    const auto& site =
        db.FindObjectAt(snap, pole_id)->Get("pole_location").geometry_value();
    bool covered = false;
    for (geodb::ObjectId region_id : regions) {
      const auto& area = db.FindObjectAt(snap, region_id)
                             ->Get("region_area")
                             .geometry_value();
      if (geom::Intersects(site, area)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "pole " << pole_id << " outside all regions";
  }
}

TEST(Environmental, BuildsAndPopulates) {
  geodb::GeoDatabase db("eco_db");
  EnvironmentalConfig config;
  config.num_patches = 10;
  config.num_rivers = 2;
  config.num_stations = 5;
  config.num_protected = 2;
  ASSERT_TRUE(BuildEnvironmentalDb(&db, config).ok());
  EXPECT_EQ(db.ExtentSize("VegetationPatch"), 10u);
  EXPECT_EQ(db.ExtentSize("River"), 2u);
  EXPECT_EQ(db.ExtentSize("MonitoringStation"), 5u);
  EXPECT_EQ(db.ExtentSize("ProtectedArea"), 2u);
  // Rivers are polylines, patches are polygons.
  const auto rivers = db.ScanExtent("River").value();
  EXPECT_TRUE(db.FindObjectAt(db.OpenSnapshot(), rivers.front())
                  ->Get("course")
                  .geometry_value()
                  .is_linestring());
}

TEST(Synthetic, SchemaSweepShapes) {
  geodb::GeoDatabase db("synthetic");
  SyntheticSchemaConfig config;
  config.num_classes = 5;
  config.attrs_per_class = 4;
  config.instances_per_class = 7;
  ASSERT_TRUE(BuildSyntheticSchema(&db, config).ok());
  EXPECT_EQ(db.schema().NumClasses(), 5u);
  for (size_t c = 0; c < 5; ++c) {
    const std::string name = "class_" + std::to_string(c);
    EXPECT_EQ(db.ExtentSize(name), 7u);
    // attrs + geometry.
    EXPECT_EQ(db.schema().AllAttributesOf(name).value().size(), 5u);
    EXPECT_EQ(db.GeometryAttributeOf(name), "location");
  }
  ASSERT_TRUE(AddSyntheticInstances(&db, "class_0", 3, 77,
                                    config.world)
                  .ok());
  EXPECT_EQ(db.ExtentSize("class_0"), 10u);
}

TEST(Synthetic, ContextsAndDirectives) {
  const auto contexts = GenerateContexts(10, 3, 2);
  ASSERT_EQ(contexts.size(), 10u);
  EXPECT_EQ(contexts[0].user, "user_0");
  EXPECT_EQ(contexts[4].category, "category_1");
  EXPECT_EQ(contexts[5].application, "app_1");

  DirectiveSweepConfig config;
  config.num_directives = 20;
  config.user_frac = 0.5;
  const auto directives = GenerateDirectives(config);
  ASSERT_EQ(directives.size(), 20u);
  size_t with_user = 0;
  for (const auto& d : directives) {
    if (!d.user.empty()) ++with_user;
    ASSERT_EQ(d.classes.size(), 1u);
    EXPECT_FALSE(d.classes[0].control.empty());
  }
  EXPECT_EQ(with_user, 10u);
}

}  // namespace
}  // namespace agis::workload
