#include "custlang/access_control.h"

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "workload/phone_net.h"

namespace agis::custlang {
namespace {

TEST(AccessControl, DefaultAllow) {
  AccessControl acl;
  EXPECT_TRUE(acl.MayCustomize("anyone", "Pole"));
}

TEST(AccessControl, DenyOverridesEverything) {
  AccessControl acl;
  acl.Allow("intern", "Pole");
  acl.Deny("intern", "Pole");
  EXPECT_FALSE(acl.MayCustomize("intern", "Pole"));
}

TEST(AccessControl, AllowSwitchesToWhitelist) {
  AccessControl acl;
  acl.Allow("intern", "Duct");
  EXPECT_TRUE(acl.MayCustomize("intern", "Duct"));
  EXPECT_FALSE(acl.MayCustomize("intern", "Pole"));  // Not whitelisted.
  EXPECT_TRUE(acl.MayCustomize("chief", "Pole"));    // Other principals free.
}

TEST(AccessControl, DirectivePrincipalResolution) {
  AccessControl acl;
  acl.Deny("planners", "Supplier");

  Directive by_user;
  by_user.user = "ana";
  by_user.category = "planners";
  // User binding takes precedence: ana has no restrictions.
  EXPECT_TRUE(acl.Admits(by_user, "Supplier"));

  Directive by_category;
  by_category.category = "planners";
  EXPECT_FALSE(acl.Admits(by_category, "Supplier"));
  EXPECT_TRUE(acl.Admits(by_category, "Pole"));

  Directive generic;
  generic.application = "browsing";
  EXPECT_TRUE(acl.Admits(generic, "Supplier"));
}

TEST(AccessControl, IntegratesWithSystemInstallation) {
  core::ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  auto acl = std::make_shared<AccessControl>();
  acl->Deny("field_tech", "ServiceRegion");
  sys.set_access_checker(
      [acl](const Directive& d, const std::string& cls) {
        return acl->Admits(d, cls);
      });

  EXPECT_TRUE(sys.InstallCustomization(
                     "For user field_tech class ServiceRegion display")
                  .status()
                  .IsPermissionDenied());
  EXPECT_TRUE(
      sys.InstallCustomization("For user field_tech class Pole display")
          .ok());
}

}  // namespace
}  // namespace agis::custlang
