// Tests for the extended-context dimension (`when <key> <value>`) —
// the paper's "conceivable extensions to other contextual data (e.g.,
// geographic scale, time framework)".

#include <gtest/gtest.h>

#include "core/active_interface_system.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace agis::custlang {
namespace {

TEST(Extras, ParserAcceptsWhenClauses) {
  auto d = ParseDirective(
      "For user juliano when scale 1:5000 when season dry "
      "class Pole display presentation as pointFormat");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->extras.at("scale"), "1:5000");
  EXPECT_EQ(d->extras.at("season"), "dry");
}

TEST(Extras, WhenAloneIsAValidCondition) {
  auto d = ParseDirective(
      "For when scale 1:5000 class Pole display");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_TRUE(d->user.empty());
  EXPECT_EQ(d->extras.size(), 1u);
}

TEST(Extras, WhenNeedsKeyAndValue) {
  EXPECT_TRUE(ParseDirective("For user u when scale class Pole display")
                  .status()
                  .IsParseError());
}

TEST(Extras, RoundTripThroughToSource) {
  auto first = ParseDirective(
      "For user u when scale 1:5000 schema s display as Null");
  ASSERT_TRUE(first.ok());
  auto second = ParseDirective(first->ToSource());
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << first->ToSource();
  EXPECT_EQ(second->extras, first->extras);
  EXPECT_EQ(second->CanonicalName(), first->CanonicalName());
}

TEST(Extras, CompiledIntoRuleCondition) {
  auto d = ParseDirective(
      "For user u when scale 1:5000 class Pole display");
  ASSERT_TRUE(d.ok());
  const auto rules = CompileDirective(d.value());
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].condition.extras.at("scale"), "1:5000");

  // A context with the matching scale triggers; without it, not.
  active::Event event;
  event.name = "Get_Class";
  event.context.user = "u";
  event.params["class"] = "Pole";
  EXPECT_FALSE(rules[0].Triggers(event));
  event.context.extras["scale"] = "1:5000";
  EXPECT_TRUE(rules[0].Triggers(event));
}

TEST(Extras, ScaleDependentPresentationEndToEnd) {
  core::ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  // Zoomed out: poles as plain dots. Zoomed in: crosses.
  ASSERT_TRUE(sys.InstallCustomization(
                     "For application pole_manager when zoom far "
                     "class Pole display presentation as pointFormat")
                  .ok());
  ASSERT_TRUE(sys.InstallCustomization(
                     "For application pole_manager when zoom near "
                     "class Pole display presentation as crossFormat")
                  .ok());
  UserContext ctx;
  ctx.user = "ana";
  ctx.application = "pole_manager";
  ctx.extras["zoom"] = "far";
  sys.dispatcher().set_context(ctx);
  auto far_window = sys.dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(far_window.ok());
  EXPECT_EQ(far_window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "pointFormat");
  ctx.extras["zoom"] = "near";
  sys.dispatcher().set_context(ctx);
  auto near_window = sys.dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(near_window.ok());
  EXPECT_EQ(near_window.value()
                ->FindDescendant("presentation")
                ->GetProperty(uilib::kPropStyle),
            "crossFormat");
}

TEST(Explain, WindowsCarryTheirProvenance) {
  core::ActiveInterfaceSystem sys("phone_net");
  ASSERT_TRUE(workload::BuildPhoneNetwork(&sys.db()).ok());
  ASSERT_TRUE(
      sys.InstallCustomization(workload::Fig6DirectiveSource()).ok());

  // Customized window: explanation names the rule and directive.
  UserContext juliano;
  juliano.user = "juliano";
  juliano.application = "pole_manager";
  sys.dispatcher().set_context(juliano);
  auto window = sys.dispatcher().OpenClassWindow("Pole");
  ASSERT_TRUE(window.ok());
  EXPECT_FALSE(window.value()->GetProperty("customized_by").empty());
  const std::string explanation =
      sys.dispatcher().ExplainWindow(*window.value());
  EXPECT_NE(explanation.find("Customization rule"), std::string::npos);
  EXPECT_NE(explanation.find("user=juliano"), std::string::npos);

  // Generic window: explanation says so.
  UserContext other;
  other.user = "someone";
  sys.dispatcher().set_context(other);
  auto generic = sys.dispatcher().OpenClassWindow("Duct");
  ASSERT_TRUE(generic.ok());
  EXPECT_TRUE(generic.value()->GetProperty("customized_by").empty());
  EXPECT_NE(sys.dispatcher()
                .ExplainWindow(*generic.value())
                .find("generic default"),
            std::string::npos);
}

}  // namespace
}  // namespace agis::custlang
