#include "custlang/parser.h"

#include <gtest/gtest.h>

#include "workload/phone_net.h"

namespace agis::custlang {
namespace {

TEST(Parser, ParsesFig6Verbatim) {
  auto d = ParseDirective(workload::Fig6DirectiveSource());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->user, "juliano");
  EXPECT_EQ(d->category, "");
  EXPECT_EQ(d->application, "pole_manager");
  EXPECT_TRUE(d->has_schema_clause);
  EXPECT_EQ(d->schema_name, "phone_net");
  EXPECT_EQ(d->schema_mode, active::SchemaDisplayMode::kNull);
  ASSERT_EQ(d->classes.size(), 1u);
  const ClassClause& pole = d->classes[0];
  EXPECT_EQ(pole.class_name, "Pole");
  EXPECT_EQ(pole.control, "poleWidget");
  EXPECT_EQ(pole.presentation, "pointFormat");
  ASSERT_EQ(pole.attributes.size(), 3u);
  EXPECT_EQ(pole.attributes[0].attribute, "pole_composition");
  EXPECT_EQ(pole.attributes[0].widget, "composed_text");
  EXPECT_EQ(pole.attributes[0].sources,
            (std::vector<std::string>{"pole.material", "pole.diameter",
                                      "pole.height"}));
  EXPECT_EQ(pole.attributes[0].callback, "composed_text.notify()");
  EXPECT_EQ(pole.attributes[1].attribute, "pole_supplier");
  EXPECT_EQ(pole.attributes[1].widget, "text");
  EXPECT_EQ(pole.attributes[1].sources,
            (std::vector<std::string>{"get_supplier_name(pole_supplier)"}));
  EXPECT_TRUE(pole.attributes[2].null_display);
  EXPECT_EQ(pole.attributes[2].widget, "");
}

TEST(Parser, ForClauseFieldsInAnyOrder) {
  auto d = ParseDirective(
      "For application app category cat user u schema s display as default");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->user, "u");
  EXPECT_EQ(d->category, "cat");
  EXPECT_EQ(d->application, "app");
  EXPECT_EQ(d->schema_mode, active::SchemaDisplayMode::kDefault);
}

TEST(Parser, SchemaModes) {
  for (const auto& [text, mode] :
       std::vector<std::pair<std::string, active::SchemaDisplayMode>>{
           {"default", active::SchemaDisplayMode::kDefault},
           {"hierarchy", active::SchemaDisplayMode::kHierarchy},
           {"user-defined", active::SchemaDisplayMode::kUserDefined},
           {"Null", active::SchemaDisplayMode::kNull},
           {"NULL", active::SchemaDisplayMode::kNull}}) {
    auto d = ParseDirective("For user u schema s display as " + text);
    ASSERT_TRUE(d.ok()) << text;
    EXPECT_EQ(d->schema_mode, mode) << text;
  }
  EXPECT_TRUE(ParseDirective("For user u schema s display as sideways")
                  .status()
                  .IsParseError());
}

TEST(Parser, MultipleClassClauses) {
  auto d = ParseDirective(R"(
    For category planner
    class Pole display presentation as crossFormat
    class Duct display control as class_control
    class Region display
  )");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_FALSE(d->has_schema_clause);
  ASSERT_EQ(d->classes.size(), 3u);
  EXPECT_EQ(d->classes[0].presentation, "crossFormat");
  EXPECT_EQ(d->classes[1].control, "class_control");
  EXPECT_TRUE(d->classes[2].control.empty());
}

TEST(Parser, CommentsAndBlankLines) {
  auto d = ParseDirective(R"(
    # leading comment
    For user u  # trailing comment
    # another
    schema s display as hierarchy
  )");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->user, "u");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  const auto status =
      ParseDirective("For user u\nschema s display oops").status();
  ASSERT_TRUE(status.IsParseError());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(Parser, RejectsStructuralMistakes) {
  // Missing For.
  EXPECT_TRUE(ParseDirective("schema s display as Null")
                  .status()
                  .IsParseError());
  // For without any binding.
  EXPECT_TRUE(ParseDirective("For schema s display as Null")
                  .status()
                  .IsParseError());
  // Directive with no clauses at all.
  EXPECT_TRUE(ParseDirective("For user u").status().IsParseError());
  // Keyword where identifier expected.
  EXPECT_TRUE(ParseDirective("For user class").status().IsParseError());
  // Empty from clause.
  EXPECT_TRUE(ParseDirective("For user u class C display instances "
                             "display attribute a as w from using x()")
                  .status()
                  .IsParseError());
  // Trailing garbage.
  EXPECT_TRUE(ParseDirective("For user u schema s display as Null extra")
                  .status()
                  .IsParseError());
}

TEST(Parser, ParseDirectivesSplitsOnFor) {
  auto ds = ParseDirectives(R"(
    For user a schema s display as Null
    For user b schema s display as hierarchy
  )");
  ASSERT_TRUE(ds.ok()) << ds.status();
  ASSERT_EQ(ds->size(), 2u);
  EXPECT_EQ((*ds)[0].user, "a");
  EXPECT_EQ((*ds)[1].user, "b");
  auto empty = ParseDirectives("  # only comments\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(Parser, RoundTripThroughToSource) {
  const std::string sources[] = {
      workload::Fig6DirectiveSource(),
      workload::PlannerDirectiveSource(),
      "For user u category c application a\n"
      "schema s display as user-defined\n"
      "class A display\n  control as w1\n  presentation as f1\n"
      "  instances\n    display attribute x as wx from a.b c.d using w.x()\n"
      "    display attribute y as Null\n",
  };
  for (const std::string& source : sources) {
    auto first = ParseDirective(source);
    ASSERT_TRUE(first.ok()) << first.status();
    auto second = ParseDirective(first->ToSource());
    ASSERT_TRUE(second.ok())
        << second.status() << "\nregenerated:\n" << first->ToSource();
    EXPECT_EQ(second->ToSource(), first->ToSource());
    EXPECT_EQ(second->CanonicalName(), first->CanonicalName());
    EXPECT_EQ(second->classes.size(), first->classes.size());
  }
}

TEST(Directive, CanonicalNameIsStable) {
  auto d = ParseDirective(workload::Fig6DirectiveSource());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->CanonicalName(),
            "For user=juliano application=pole_manager schema=phone_net");
}

}  // namespace
}  // namespace agis::custlang
