// CompileCache unit tests: hit/miss accounting, LRU eviction order,
// same-text replacement, and the zero-capacity escape hatch. The
// system-level behaviour (parse+compile actually skipped) is covered
// in tests/core/durable_system_test.cc.

#include "custlang/compile_cache.h"

#include <string>

#include <gtest/gtest.h>

#include "custlang/parser.h"

namespace agis::custlang {
namespace {

Directive Parse(const std::string& source) {
  auto parsed = ParseDirective(source);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return parsed.ok() ? parsed.value() : Directive{};
}

const std::string kSourceA = "For user juliano class Pole display";
const std::string kSourceB = "For user maria class Pole display";
const std::string kSourceC = "For category planner class Duct display";

TEST(CompileCache, MissThenHitReturnsTheStoredEntry) {
  CompileCache cache(4);
  EXPECT_EQ(cache.Find(kSourceA), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.Put(kSourceA, Parse(kSourceA), {});
  const CompileCache::Entry* hit = cache.Find(kSourceA);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->source, kSourceA);
  EXPECT_EQ(hit->directive.user, "juliano");
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(CompileCache, HashIsStableAndContentSensitive) {
  EXPECT_EQ(CompileCache::HashSource(kSourceA),
            CompileCache::HashSource(kSourceA));
  EXPECT_NE(CompileCache::HashSource(kSourceA),
            CompileCache::HashSource(kSourceB));
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(CompileCache::HashSource(""), 14695981039346656037ull);
}

TEST(CompileCache, PeekNeitherCountsNorTouchesLruOrder) {
  CompileCache cache(2);
  cache.Put(kSourceA, Parse(kSourceA), {});
  cache.Put(kSourceB, Parse(kSourceB), {});
  ASSERT_NE(cache.Peek(kSourceA), nullptr);
  EXPECT_EQ(cache.Peek(kSourceC), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // A did NOT become most-recent: the next Put still evicts it.
  cache.Put(kSourceC, Parse(kSourceC), {});
  EXPECT_EQ(cache.Peek(kSourceA), nullptr);
  EXPECT_NE(cache.Peek(kSourceB), nullptr);
}

TEST(CompileCache, EvictsLeastRecentlyUsed) {
  CompileCache cache(2);
  cache.Put(kSourceA, Parse(kSourceA), {});
  cache.Put(kSourceB, Parse(kSourceB), {});
  ASSERT_NE(cache.Find(kSourceA), nullptr);  // A is now most recent.
  cache.Put(kSourceC, Parse(kSourceC), {});  // Evicts B, not A.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_NE(cache.Find(kSourceA), nullptr);
  EXPECT_NE(cache.Find(kSourceC), nullptr);
  EXPECT_EQ(cache.Find(kSourceB), nullptr);
}

TEST(CompileCache, PutSameTextReplacesInsteadOfDuplicating) {
  CompileCache cache(4);
  cache.Put(kSourceA, Parse(kSourceA), {});
  Directive changed = Parse(kSourceA);
  changed.user = "replaced";  // Distinguishable payload.
  cache.Put(kSourceA, changed, {});
  EXPECT_EQ(cache.stats().entries, 1u);
  const CompileCache::Entry* hit = cache.Find(kSourceA);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->directive.user, "replaced");
}

TEST(CompileCache, ZeroCapacityNeverStoresOrHits) {
  CompileCache cache(0);
  cache.Put(kSourceA, Parse(kSourceA), {});
  EXPECT_EQ(cache.Find(kSourceA), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CompileCache, ClearDropsEntriesButKeepsCounters) {
  CompileCache cache(4);
  cache.Put(kSourceA, Parse(kSourceA), {});
  ASSERT_NE(cache.Find(kSourceA), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Find(kSourceA), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);  // History survives the clear.
}

}  // namespace
}  // namespace agis::custlang
