#include <gtest/gtest.h>

#include "custlang/analyzer.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"
#include "uilib/library.h"
#include "workload/phone_net.h"

namespace agis::custlang {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<geodb::GeoDatabase>("phone_net");
    ASSERT_TRUE(workload::BuildPhoneNetwork(db_.get()).ok());
    ASSERT_TRUE(library_.RegisterKernelPrototypes().ok());
    ASSERT_TRUE(uilib::RegisterStandardGisPrototypes(&library_).ok());
    ASSERT_TRUE(styles_.RegisterStandardFormats().ok());
  }

  agis::Status Analyze(const std::string& source,
                       const AccessChecker& checker = nullptr) {
    auto d = ParseDirective(source);
    if (!d.ok()) return d.status();
    return AnalyzeDirective(d.value(), db_->schema(), library_, styles_,
                            checker);
  }

  std::unique_ptr<geodb::GeoDatabase> db_;
  uilib::InterfaceObjectLibrary library_;
  carto::StyleRegistry styles_;
};

TEST_F(AnalyzerTest, Fig6DirectivePasses) {
  EXPECT_TRUE(Analyze(workload::Fig6DirectiveSource()).ok())
      << Analyze(workload::Fig6DirectiveSource());
  EXPECT_TRUE(Analyze(workload::PlannerDirectiveSource()).ok());
}

TEST_F(AnalyzerTest, WrongSchemaNameRejected) {
  EXPECT_TRUE(
      Analyze("For user u schema other_db display as Null").IsNotFound());
}

TEST_F(AnalyzerTest, UnknownClassRejected) {
  const auto status = Analyze("For user u class Tower display");
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("Tower"), std::string::npos);
}

TEST_F(AnalyzerTest, UnknownWidgetsAndFormatsRejected) {
  EXPECT_TRUE(Analyze("For user u class Pole display control as missingWidget")
                  .IsFailedPrecondition());
  EXPECT_TRUE(
      Analyze("For user u class Pole display presentation as missingFormat")
          .IsFailedPrecondition());
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as missingWidget")
                  .IsFailedPrecondition());
}

TEST_F(AnalyzerTest, WidgetAliasesAccepted) {
  // "text" aliases the kernel "text_field".
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text")
                  .ok());
  EXPECT_EQ(CanonicalWidgetName("text"), "text_field");
  EXPECT_EQ(CanonicalWidgetName("poleWidget"), "poleWidget");
}

TEST_F(AnalyzerTest, UnknownAttributeRejected) {
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute bogus as text")
                  .IsFailedPrecondition());
}

TEST_F(AnalyzerTest, SourceChecks) {
  // Dotted path on a non-tuple attribute.
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text from a.b")
                  .IsFailedPrecondition());
  // Dotted path with no matching tuple field.
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_composition as text "
                      "from pole.nothing")
                  .IsFailedPrecondition());
  // Unknown method.
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_supplier as text "
                      "from no_method(pole_supplier)")
                  .IsFailedPrecondition());
  // Unknown plain attribute source.
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text from bogus")
                  .IsFailedPrecondition());
  // Valid inherited plain source.
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text from status")
                  .ok());
}

TEST_F(AnalyzerTest, CallbackShapeChecked) {
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text using broken")
                  .IsFailedPrecondition());
  EXPECT_TRUE(Analyze("For user u class Pole display instances "
                      "display attribute pole_type as text using w.cb()")
                  .ok());
}

TEST_F(AnalyzerTest, AccessCheckerCanDeny) {
  const AccessChecker deny_pole = [](const Directive& d,
                                     const std::string& cls) {
    return !(d.user == "intern" && cls == "Pole");
  };
  EXPECT_TRUE(
      Analyze("For user intern class Pole display", deny_pole)
          .IsPermissionDenied());
  EXPECT_TRUE(Analyze("For user chief class Pole display", deny_pole).ok());
}

TEST(Compiler, Fig6CompilesToThreeRules) {
  auto d = ParseDirective(workload::Fig6DirectiveSource());
  ASSERT_TRUE(d.ok());
  const std::vector<active::EcaRule> rules = CompileDirective(d.value());
  ASSERT_EQ(rules.size(), 3u);

  // R1: On Get_Schema If <juliano, pole_manager> — builds the hidden
  // Schema window and auto-opens Pole.
  const active::EcaRule& r1 = rules[0];
  EXPECT_EQ(r1.event_name, "Get_Schema");
  EXPECT_EQ(r1.param_filters.at("schema"), "phone_net");
  EXPECT_EQ(r1.condition.user, "juliano");
  EXPECT_EQ(r1.condition.application, "pole_manager");
  EXPECT_TRUE(r1.condition.category.empty());
  active::Event probe;
  probe.name = "Get_Schema";
  auto payload1 = r1.customization_action(probe);
  ASSERT_TRUE(payload1.ok());
  EXPECT_EQ(payload1->schema_mode, active::SchemaDisplayMode::kNull);
  EXPECT_EQ(payload1->auto_open_classes,
            (std::vector<std::string>{"Pole"}));

  // R2: On Get_Class(Pole) — poleWidget + pointFormat.
  const active::EcaRule& r2 = rules[1];
  EXPECT_EQ(r2.event_name, "Get_Class");
  EXPECT_EQ(r2.param_filters.at("class"), "Pole");
  auto payload2 = r2.customization_action(probe);
  ASSERT_TRUE(payload2.ok());
  EXPECT_EQ(payload2->control_widget, "poleWidget");
  EXPECT_EQ(payload2->presentation_format, "pointFormat");

  // R3: On Get_Value(Pole) — the three attribute customizations, with
  // the "text" alias canonicalized.
  const active::EcaRule& r3 = rules[2];
  EXPECT_EQ(r3.event_name, "Get_Value");
  auto payload3 = r3.customization_action(probe);
  ASSERT_TRUE(payload3.ok());
  ASSERT_EQ(payload3->attributes.size(), 3u);
  EXPECT_EQ(payload3->attributes[0].widget, "composed_text");
  EXPECT_EQ(payload3->attributes[1].widget, "text_field");
  EXPECT_TRUE(payload3->attributes[2].hidden);

  // All rules share the directive's condition and provenance.
  for (const active::EcaRule& rule : rules) {
    EXPECT_EQ(rule.condition, r1.condition);
    EXPECT_EQ(rule.provenance, d->CanonicalName());
    EXPECT_EQ(rule.family, active::RuleFamily::kCustomization);
  }
}

TEST(Compiler, SchemaOnlyDirectiveYieldsOneRule) {
  auto d = ParseDirective("For category c schema s display as hierarchy");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(CompileDirective(d.value()).size(), 1u);
}

TEST(Compiler, ClassWithoutInstancesSkipsGetValueRule) {
  auto d = ParseDirective(
      "For user u class Pole display presentation as pointFormat");
  ASSERT_TRUE(d.ok());
  const auto rules = CompileDirective(d.value());
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].event_name, "Get_Class");
}

TEST(Compiler, ExplainListsRulesInPaperNotation) {
  auto d = ParseDirective(workload::Fig6DirectiveSource());
  ASSERT_TRUE(d.ok());
  const std::string text = ExplainCompilation(d.value());
  EXPECT_NE(text.find("compiles to 3 rule(s)"), std::string::npos);
  EXPECT_NE(text.find("R1: On Get_Schema"), std::string::npos);
  EXPECT_NE(text.find("R2: On Get_Class(class=Pole)"), std::string::npos);
  EXPECT_NE(text.find("If <juliano, *, pole_manager>"), std::string::npos);
}

}  // namespace
}  // namespace agis::custlang
