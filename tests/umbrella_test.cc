// The umbrella header must be self-contained and conflict-free.
#include "agis.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EverythingIncludesCleanly) {
  agis::core::ActiveInterfaceSystem sys("umbrella");
  EXPECT_EQ(sys.db().NumObjects(), 0u);
}

}  // namespace
