// Experiment C11 — changefeed-driven incremental maintenance. Two
// claims: (a) per-object cache invalidation keeps a hot viewport's
// buffer-pool hit rate high under sustained writes elsewhere, where
// the old class-prefix invalidation dropped it to zero; (b) patching a
// class window through the changefeed (ViewRefresher +
// IncrementalView) makes a single-object change far cheaper than the
// full rebuild it used to cost.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "core/active_interface_system.h"
#include "geodb/database.h"
#include "storage/changefeed.h"
#include "ui/view_refresher.h"
#include "workload/synthetic.h"

namespace {

using agis::geodb::GetClassOptions;

std::unique_ptr<agis::geodb::GeoDatabase> MakeDb(size_t instances,
                                                 bool legacy_invalidation) {
  agis::geodb::DatabaseOptions options;
  options.buffer_pool_bytes = 64 << 20;
  options.legacy_class_prefix_invalidation = legacy_invalidation;
  auto db = std::make_unique<agis::geodb::GeoDatabase>("cfbench", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)cls.AddAttribute(agis::geodb::AttributeDef::String("tag"));
  (void)db->RegisterClass(std::move(cls));
  (void)agis::workload::AddSyntheticInstances(
      db.get(), "P", instances, 3, agis::geom::BoundingBox(0, 0, 1000, 1000));
  return db;
}

GetClassOptions HotViewport() {
  GetClassOptions q;
  q.window = agis::geom::BoundingBox(0, 0, 100, 100);  // 1% of the world.
  return q;
}

/// (a) A browse session pinned to one viewport while a writer churns
/// objects far outside it (same class — the case prefix invalidation
/// handled worst). Reported: the viewport reads' own hit rate.
void RunHotViewport(benchmark::State& state, bool legacy) {
  auto db = MakeDb(4096, legacy);
  agis::Rng rng(7);
  (void)db->GetClass("P", HotViewport());  // Warm the slice.
  uint64_t reads = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    // One sustained write per read, always far from the viewport.
    const agis::geodb::ObjectId victim =
        1 + rng.Uniform(4096);
    if (rng.Bernoulli(0.5)) {
      (void)db->Update(victim, "loc",
                       agis::geodb::Value::MakeGeometry(
                           agis::geom::Geometry::FromPoint(
                               {rng.UniformDouble(500, 1000),
                                rng.UniformDouble(500, 1000)})));
    } else {
      (void)db->Update(victim, "tag", agis::geodb::Value::String("churn"));
    }
    auto result = db->GetClass("P", HotViewport());
    benchmark::DoNotOptimize(result);
    ++reads;
    if (result.ok() && result.value().from_cache) ++hits;
  }
  state.counters["hot_hit_rate"] =
      reads == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(reads);
  state.counters["invalidated"] =
      static_cast<double>(db->buffer_pool().stats().invalidated);
  state.counters["survivals"] =
      static_cast<double>(db->buffer_pool().stats().invalidation_survivals);
}

void BM_HotViewportUnderWrites_PerObject(benchmark::State& state) {
  RunHotViewport(state, /*legacy=*/false);
}
BENCHMARK(BM_HotViewportUnderWrites_PerObject);

void BM_HotViewportUnderWrites_LegacyPrefix(benchmark::State& state) {
  RunHotViewport(state, /*legacy=*/true);
}
BENCHMARK(BM_HotViewportUnderWrites_LegacyPrefix);

/// (b) One open class window, one object changing per refresh. The
/// patched path consumes the changefeed delta and repaints only that
/// object's cells; the baseline rebuilds the window.
struct RefreshHarness {
  std::unique_ptr<agis::core::ActiveInterfaceSystem> sys;
  std::unique_ptr<agis::ui::ViewRefresher> refresher;
  std::vector<agis::geodb::ObjectId> ids;
  agis::Rng rng{7};

  explicit RefreshHarness(size_t instances, bool attach_feed) {
    sys = std::make_unique<agis::core::ActiveInterfaceSystem>("cfbench");
    agis::geodb::ClassDef cls("P", "");
    (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
    (void)cls.AddAttribute(agis::geodb::AttributeDef::String("tag"));
    (void)sys->db().RegisterClass(std::move(cls));
    (void)agis::workload::AddSyntheticInstances(
        &sys->db(), "P", instances, 3,
        agis::geom::BoundingBox(0, 0, 1000, 1000));
    ids = sys->db().ScanExtent("P").value();
    refresher = std::make_unique<agis::ui::ViewRefresher>(
        &sys->dispatcher(), &sys->engine(),
        agis::ui::ViewRefresher::Mode::kMarkStale);
    (void)refresher->Install();
    if (attach_feed) {
      refresher->AttachChangefeed(sys->changefeed(), &sys->styles());
    }
    (void)sys->dispatcher().OpenClassWindow("P");
  }

  void Step() {
    // Interior move: membership and bounds stay put, one symbol moves.
    const agis::geodb::ObjectId id = ids[rng.Uniform(ids.size())];
    (void)sys->db().Update(id, "loc",
                           agis::geodb::Value::MakeGeometry(
                               agis::geom::Geometry::FromPoint(
                                   {rng.UniformDouble(100, 900),
                                    rng.UniformDouble(100, 900)})));
    (void)refresher->RefreshStale();
  }
};

void BM_SingleObjectRefresh_Patched(benchmark::State& state) {
  RefreshHarness harness(static_cast<size_t>(state.range(0)),
                         /*attach_feed=*/true);
  for (auto _ : state) harness.Step();
  state.counters["instances"] = static_cast<double>(state.range(0));
  state.counters["windows_patched"] =
      static_cast<double>(harness.refresher->windows_patched());
  state.counters["full_rebuilds"] =
      static_cast<double>(harness.refresher->full_rebuilds());
}
BENCHMARK(BM_SingleObjectRefresh_Patched)
    ->RangeMultiplier(4)->Range(256, 4096);

void BM_SingleObjectRefresh_FullRebuild(benchmark::State& state) {
  RefreshHarness harness(static_cast<size_t>(state.range(0)),
                         /*attach_feed=*/false);
  for (auto _ : state) harness.Step();
  state.counters["instances"] = static_cast<double>(state.range(0));
  state.counters["full_rebuilds"] =
      static_cast<double>(harness.refresher->full_rebuilds());
}
BENCHMARK(BM_SingleObjectRefresh_FullRebuild)
    ->RangeMultiplier(4)->Range(256, 4096);

/// Raw feed overhead: what one publish costs the write path.
void BM_ChangefeedPublish(benchmark::State& state) {
  agis::storage::Changefeed feed(4096);
  const auto sub = feed.Subscribe();
  agis::storage::ChangeRecord record;
  record.kind = agis::storage::ChangeKind::kUpdate;
  record.class_name = "P";
  record.changed_attributes = {"loc"};
  uint64_t published = 0;
  for (auto _ : state) {
    record.object_id = ++published;
    benchmark::DoNotOptimize(feed.Publish(record));
    if ((published & 1023) == 0) {
      const auto poll = feed.Poll(sub);
      (void)feed.Ack(sub, poll.next_seq);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChangefeedPublish);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "==== C11: changefeed + incremental view maintenance ====\n"
      "PerObject should hold a ~1.0 hot-viewport hit rate while\n"
      "LegacyPrefix collapses to ~0 under the same write stream;\n"
      "Patched single-object refresh should be several times cheaper\n"
      "than FullRebuild, with the gap widening as the window's extent\n"
      "grows.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
