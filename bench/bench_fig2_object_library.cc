// Experiment F2 — Figure 2, the kernel classes of interface objects.
// Regenerates the kernel hierarchy and measures the costs the library
// design relies on: atomic widget creation, recursive Panel
// composition, deep-clone instantiation, and prototype lookup.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "uilib/interface_object.h"
#include "uilib/library.h"

namespace {

using agis::uilib::InterfaceObject;
using agis::uilib::InterfaceObjectLibrary;
using agis::uilib::MakeWidget;
using agis::uilib::WidgetKind;

void PrintFigure2() {
  std::printf("==== Figure 2: kernel classes of interface objects ====\n");
  InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  for (const std::string& name : library.Names()) {
    const InterfaceObject* proto = library.Peek(name);
    std::printf("  %-13s (%s) — %s\n", name.c_str(),
                agis::uilib::WidgetKindName(proto->kind()),
                library.DocOf(name).c_str());
  }
  std::printf("  composition: Window ◇— Panel (recursive) ◇— "
              "{TextField, DrawingArea, List, Button, Menu ◇— MenuItem}\n\n");
}

/// A balanced panel tree: `depth` levels, `fanout` children each.
std::unique_ptr<InterfaceObject> BuildPanelTree(int depth, int fanout) {
  auto node = MakeWidget(WidgetKind::kPanel, "panel");
  if (depth <= 1) return node;
  for (int i = 0; i < fanout; ++i) {
    if (depth == 2) {
      node->AddChild(MakeWidget(WidgetKind::kButton, "leaf"));
    } else {
      node->AddChild(BuildPanelTree(depth - 1, fanout));
    }
  }
  return node;
}

void BM_AtomicWidgetCreate(benchmark::State& state) {
  for (auto _ : state) {
    auto widget = MakeWidget(WidgetKind::kButton, "b");
    benchmark::DoNotOptimize(widget);
  }
}
BENCHMARK(BM_AtomicWidgetCreate);

void BM_PanelCompositionDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto tree = BuildPanelTree(depth, 2);
    benchmark::DoNotOptimize(tree);
  }
  state.counters["nodes"] = static_cast<double>(
      BuildPanelTree(depth, 2)->SubtreeSize());
}
BENCHMARK(BM_PanelCompositionDepth)->DenseRange(2, 10, 2);

void BM_CloneSubtree(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto tree = BuildPanelTree(depth, 2);
  for (auto _ : state) {
    auto copy = tree->Clone();
    benchmark::DoNotOptimize(copy);
  }
  state.counters["nodes"] = static_cast<double>(tree->SubtreeSize());
}
BENCHMARK(BM_CloneSubtree)->DenseRange(2, 10, 2);

void BM_LibraryInstantiate(benchmark::State& state) {
  InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  (void)RegisterStandardGisPrototypes(&library);
  for (auto _ : state) {
    auto instance = library.Instantiate("map_selection_panel");
    benchmark::DoNotOptimize(instance);
  }
}
BENCHMARK(BM_LibraryInstantiate);

void BM_FindDescendant(benchmark::State& state) {
  const auto tree = BuildPanelTree(static_cast<int>(state.range(0)), 2);
  // Worst case: search for a missing name (full traversal).
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->FindDescendant("missing"));
  }
  state.counters["nodes"] = static_cast<double>(tree->SubtreeSize());
}
BENCHMARK(BM_FindDescendant)->DenseRange(4, 12, 4);

void BM_CallbackFire(benchmark::State& state) {
  auto button = MakeWidget(WidgetKind::kButton, "b");
  long hits = 0;
  button->Bind(agis::uilib::kUiClick, "cb",
               [&hits](InterfaceObject&, const agis::uilib::UiEvent&) {
                 ++hits;
               });
  agis::uilib::UiEvent click;
  click.name = agis::uilib::kUiClick;
  for (auto _ : state) {
    benchmark::DoNotOptimize(button->Fire(click));
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CallbackFire);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
