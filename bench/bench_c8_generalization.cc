// Experiment C8 (ablation) — display-scale cartographic
// generalization. The paper names generalization among the open
// problems of presentation customization; this bench quantifies what
// the basic Douglas–Peucker display-scale simplification buys when the
// presentation area renders dense polylines.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "builder/interface_builder.h"
#include "geom/algorithms.h"
#include "uilib/widget_props.h"

namespace {

/// A database of `count` dense rivers (~`vertices` points each).
std::unique_ptr<agis::geodb::GeoDatabase> MakeDenseLineDb(size_t count,
                                                          size_t vertices) {
  auto db = std::make_unique<agis::geodb::GeoDatabase>("dense");
  agis::geodb::ClassDef cls("River", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("course"));
  (void)db->RegisterClass(std::move(cls));
  agis::Rng rng(19);
  for (size_t i = 0; i < count; ++i) {
    agis::geom::LineString line;
    double x = 0;
    double y = rng.UniformDouble(0, 1000);
    const double step = 1000.0 / static_cast<double>(vertices);
    for (size_t v = 0; v < vertices; ++v) {
      line.points.push_back({x, y});
      x += step;
      y += rng.UniformDouble(-4, 4);  // High-frequency wiggle.
    }
    (void)db->Insert("River",
                     {{"course", agis::geodb::Value::MakeGeometry(
                                     agis::geom::Geometry::FromLineString(
                                         line))}});
  }
  return db;
}

struct Rig {
  std::unique_ptr<agis::geodb::GeoDatabase> db;
  agis::uilib::InterfaceObjectLibrary library;
  agis::carto::StyleRegistry styles;
  std::unique_ptr<agis::builder::GenericInterfaceBuilder> builder;
};

std::unique_ptr<Rig> MakeRig(size_t lines, size_t vertices) {
  auto rig = std::make_unique<Rig>();
  rig->db = MakeDenseLineDb(lines, vertices);
  (void)rig->library.RegisterKernelPrototypes();
  (void)RegisterStandardGisPrototypes(&rig->library);
  (void)rig->styles.RegisterStandardFormats();
  rig->builder = std::make_unique<agis::builder::GenericInterfaceBuilder>(
      rig->db.get(), &rig->library, &rig->styles);
  return rig;
}

void RunBuild(Rig* rig, bool generalize, benchmark::State& state) {
  agis::UserContext ctx;
  agis::builder::BuildOptions options;
  options.generalize = generalize;
  options.query.use_buffer_pool = false;
  size_t removed = 0;
  for (auto _ : state) {
    auto window =
        rig->builder->BuildClassSetWindow("River", nullptr, ctx, options);
    benchmark::DoNotOptimize(window);
    if (window.ok()) {
      removed = std::stoul(window.value()
                               ->FindDescendant("presentation")
                               ->GetProperty("generalized_points_removed"));
    }
  }
  state.counters["points_removed"] = static_cast<double>(removed);
}

/// Default configuration: the builder's simplified-polyline cache is
/// on, so every rebuild after the first serves Douglas-Peucker from
/// the cache (geometries unchanged between iterations — the common
/// refresh/zoom-jitter case).
void BM_RenderDenseLines_Generalized(benchmark::State& state) {
  auto rig = MakeRig(20, static_cast<size_t>(state.range(0)));
  RunBuild(rig.get(), true, state);
  state.counters["vertices_per_line"] = static_cast<double>(state.range(0));
  const auto cache = rig->builder->simplify_cache_stats();
  state.counters["cache_hits"] = static_cast<double>(cache.hits);
  state.counters["cache_misses"] = static_cast<double>(cache.misses);
}
BENCHMARK(BM_RenderDenseLines_Generalized)
    ->RangeMultiplier(4)
    ->Range(64, 16384);

/// Ablation: cache disabled — every rebuild pays the full simplify.
/// The gap against the cached variant is the per-rebuild amortization.
void BM_RenderDenseLines_GeneralizedUncached(benchmark::State& state) {
  auto rig = MakeRig(20, static_cast<size_t>(state.range(0)));
  rig->builder->set_simplify_cache_capacity(0);
  RunBuild(rig.get(), true, state);
  state.counters["vertices_per_line"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RenderDenseLines_GeneralizedUncached)
    ->RangeMultiplier(4)
    ->Range(64, 16384);

void BM_RenderDenseLines_Raw(benchmark::State& state) {
  auto rig = MakeRig(20, static_cast<size_t>(state.range(0)));
  RunBuild(rig.get(), false, state);
  state.counters["vertices_per_line"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RenderDenseLines_Raw)->RangeMultiplier(4)->Range(64, 4096);

void BM_SimplifyAlone(benchmark::State& state) {
  agis::Rng rng(19);
  agis::geom::LineString line;
  double x = 0;
  for (int64_t v = 0; v < state.range(0); ++v) {
    line.points.push_back({x, rng.UniformDouble(-4, 4)});
    x += 1.0;
  }
  for (auto _ : state) {
    auto simplified = agis::geom::SimplifyLine(line, 5.0);
    benchmark::DoNotOptimize(simplified);
  }
  state.counters["vertices"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SimplifyAlone)->RangeMultiplier(4)->Range(64, 16384);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C8: display-scale generalization ablation ====\n"
              "Rendering dense polylines with and without Douglas-Peucker\n"
              "simplification to one raster cell. Generalized rendering\n"
              "should flatten as vertex counts grow; raw rendering grows\n"
              "linearly with vertices.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
