// Experiment C9 — durable storage: the binary snapshot format and the
// write-ahead log against the text `agisdb` import/export path.
//
// The claim under test: restoring a large database from a binary
// snapshot (length-prefixed blocks, CRC-framed, parallel block decode
// feeding the STR bulk loader) is at least 5x faster than parsing the
// text format. Save-side and WAL throughput ride along. Extents of
// 10k and 100k run by default; set AGIS_BENCH_BIG=1 to add the
// 1M-object headline measurements (Iterations(1) — each is one full
// save or restore).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "geodb/database.h"
#include "geodb/persist.h"
#include "geom/geometry.h"
#include "storage/snapshot_file.h"
#include "storage/store.h"
#include "storage/wal.h"

namespace {

using agis::geodb::AttributeDef;
using agis::geodb::ClassDef;
using agis::geodb::GeoDatabase;
using agis::geodb::Value;

std::string BenchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("agis_c9_" + name))
      .string();
}

/// A realistic mixed-attribute class: int, string, double, geometry.
std::unique_ptr<GeoDatabase> MakeDb(size_t instances) {
  auto db = std::make_unique<GeoDatabase>("persist");
  ClassDef cls("P", "");
  (void)cls.AddAttribute(AttributeDef::Int("category"));
  (void)cls.AddAttribute(AttributeDef::String("owner"));
  (void)cls.AddAttribute(AttributeDef::Double("height"));
  (void)cls.AddAttribute(AttributeDef::Geometry("loc"));
  (void)db->RegisterClass(std::move(cls));
  agis::Rng rng(19);
  for (size_t i = 0; i < instances; ++i) {
    (void)db->Insert(
        "P",
        {{"category", Value::Int(static_cast<int64_t>(i % 128))},
         {"owner", Value::String(i % 3 == 0 ? "city" : "utility_co")},
         {"height", Value::Double(rng.UniformDouble(0, 40))},
         {"loc", Value::MakeGeometry(agis::geom::Geometry::FromPoint(
                     {rng.UniformDouble(0, 1000),
                      rng.UniformDouble(0, 1000)}))}});
  }
  return db;
}

/// Shared per-extent fixtures (built once per size, reused across the
/// save/load benchmarks so the 1M db is constructed a single time).
struct Fixture {
  std::unique_ptr<GeoDatabase> db;
  std::string text;         // SaveDatabaseToString output.
  std::string binary_path;  // WriteSnapshotFile output.
};

Fixture& GetFixture(size_t instances) {
  static std::map<size_t, Fixture> fixtures;
  Fixture& f = fixtures[instances];
  if (f.db == nullptr) {
    f.db = MakeDb(instances);
    f.text = agis::geodb::SaveDatabaseToString(*f.db);
    f.binary_path = BenchPath("fixture_" + std::to_string(instances));
    agis::geodb::Snapshot snap = f.db->OpenSnapshot();
    auto written =
        agis::storage::WriteSnapshotFile(*f.db, snap, f.binary_path);
    if (!written.ok()) std::abort();
  }
  return f;
}

// ---- Save ------------------------------------------------------------------

void BM_Save_Text(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string out = agis::geodb::SaveDatabaseToString(*f.db);
    benchmark::DoNotOptimize(out);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
  state.counters["bytes"] = static_cast<double>(f.text.size());
}

void BM_Save_Binary(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<size_t>(state.range(0)));
  const std::string path = BenchPath("save");
  uint64_t bytes = 0;
  for (auto _ : state) {
    agis::geodb::Snapshot snap = f.db->OpenSnapshot();
    auto written = agis::storage::WriteSnapshotFile(*f.db, snap, path);
    if (!written.ok()) state.SkipWithError("snapshot write failed");
    bytes = written->bytes_written;
    benchmark::DoNotOptimize(written);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
  state.counters["bytes"] = static_cast<double>(bytes);
}

// ---- Restore (the headline) ------------------------------------------------

// Teardown of the restored database (freeing a million objects) is
// not part of "time to restore"; it pauses out of the measured loop.

void BM_Restore_Text(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto loaded = agis::geodb::LoadDatabaseFromString(f.text);
    if (!loaded.ok()) state.SkipWithError("text load failed");
    benchmark::DoNotOptimize(loaded);
    state.PauseTiming();
    if (loaded.ok()) loaded.value().reset();
    state.ResumeTiming();
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}

void BM_Restore_Binary(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto loaded = agis::storage::LoadSnapshotFile(f.binary_path);
    if (!loaded.ok()) state.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(loaded);
    state.PauseTiming();
    if (loaded.ok()) loaded.value().reset();
    state.ResumeTiming();
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}

void BM_Restore_BinaryParallel(benchmark::State& state) {
  Fixture& f = GetFixture(static_cast<size_t>(state.range(0)));
  agis::ThreadPool pool(4);
  for (auto _ : state) {
    auto db = std::make_unique<GeoDatabase>("persist");
    auto stats = agis::storage::LoadSnapshotFileInto(f.binary_path, db.get(),
                                                     &pool);
    if (!stats.ok()) state.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(stats);
    state.PauseTiming();
    db.reset();
    state.ResumeTiming();
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}

// ---- Write-ahead log -------------------------------------------------------

/// Append+sync throughput: records/s through the group-commit buffer
/// with one fsync barrier per batch of `range(0)` records.
void BM_WalAppendBatchSync(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const std::string path = BenchPath("wal_append");
  auto wal = agis::storage::WalWriter::Open(path);
  if (!wal.ok()) {
    state.SkipWithError("wal open failed");
    return;
  }
  agis::geodb::ObjectInstance obj(1, "P");
  obj.Set("category", Value::Int(7));
  obj.Set("owner", Value::String("utility_co"));
  agis::storage::WalRecord record;
  record.kind = agis::storage::WalRecordKind::kInsert;
  record.object = obj;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      if (!wal->Append(record).ok()) state.SkipWithError("append failed");
    }
    if (!wal->Sync().ok()) state.SkipWithError("sync failed");
  }
  (void)wal->Close();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  state.counters["batch"] = static_cast<double>(batch);
}

/// Full crash-recovery replay: open a store over a directory whose WAL
/// holds `range(0)` insert records (no snapshot), measuring
/// end-to-end recovery into a fresh database.
void BM_WalReplayRecovery(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const std::string dir = BenchPath("replay_" + std::to_string(records));
  std::filesystem::remove_all(dir);
  {
    auto db = MakeDb(0);
    auto store = agis::storage::DurableStore::Open(dir, db.get());
    if (!store.ok()) {
      state.SkipWithError("store open failed");
      return;
    }
    agis::Rng rng(7);
    for (size_t i = 0; i < records; ++i) {
      (void)db->Insert(
          "P", {{"category", Value::Int(static_cast<int64_t>(i % 128))},
                {"loc", Value::MakeGeometry(agis::geom::Geometry::FromPoint(
                            {rng.UniformDouble(0, 1000),
                             rng.UniformDouble(0, 1000)}))}});
    }
    if (!store.value()->Close().ok()) state.SkipWithError("close failed");
  }
  for (auto _ : state) {
    GeoDatabase db("persist");
    auto store = agis::storage::DurableStore::Open(dir, &db);
    if (!store.ok()) state.SkipWithError("recovery failed");
    (void)store.value()->Close();
    benchmark::DoNotOptimize(db);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}

BENCHMARK(BM_Save_Text)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);
BENCHMARK(BM_Save_Binary)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);
BENCHMARK(BM_Restore_Text)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);
BENCHMARK(BM_Restore_Binary)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);
BENCHMARK(BM_Restore_BinaryParallel)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);
BENCHMARK(BM_WalAppendBatchSync)->Arg(1)->Arg(64)->Arg(1024);
BENCHMARK(BM_WalReplayRecovery)->Unit(benchmark::kMillisecond)
    ->Arg(10000)->Arg(100000);

void RegisterBigBenchmarks() {
  // The 1M-object headline (the >=5x restore claim). One iteration
  // per benchmark: each is a full million-object save or restore.
  benchmark::RegisterBenchmark("BM_Restore_Text/1000000", BM_Restore_Text)
      ->Unit(benchmark::kMillisecond)->Arg(1000000)->Iterations(1);
  benchmark::RegisterBenchmark("BM_Restore_Binary/1000000",
                               BM_Restore_Binary)
      ->Unit(benchmark::kMillisecond)->Arg(1000000)->Iterations(1);
  benchmark::RegisterBenchmark("BM_Restore_BinaryParallel/1000000",
                               BM_Restore_BinaryParallel)
      ->Unit(benchmark::kMillisecond)->Arg(1000000)->Iterations(1);
  benchmark::RegisterBenchmark("BM_Save_Text/1000000", BM_Save_Text)
      ->Unit(benchmark::kMillisecond)->Arg(1000000)->Iterations(1);
  benchmark::RegisterBenchmark("BM_Save_Binary/1000000", BM_Save_Binary)
      ->Unit(benchmark::kMillisecond)->Arg(1000000)->Iterations(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "==== C9: durable storage vs the text import/export path ====\n"
      "Claim: binary snapshot restore (CRC-framed blocks, parallel\n"
      "decode, STR bulk-load) beats the text `agisdb` parser by >=5x;\n"
      "the gap widens with extent size and with decode workers. WAL\n"
      "append throughput scales with group-commit batch size (one\n"
      "fsync amortized over the batch); replay recovery is\n"
      "insert-bound.\nSet AGIS_BENCH_BIG=1 for the 1M-object headline "
      "runs.\n\n");
  if (std::getenv("AGIS_BENCH_BIG") != nullptr) RegisterBigBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
