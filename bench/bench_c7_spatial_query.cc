// Experiment C7 — spatial selection behind the presentation area:
// Get_Class with a viewport window across index implementations
// (R-tree / grid / linear scan) and extent sizes, plus the exact
// topological-relation refinement and R-tree fanout ablation.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "geodb/database.h"
#include "workload/synthetic.h"

namespace {

using agis::geodb::DatabaseOptions;
using agis::geodb::GeoDatabase;
using agis::geodb::GetClassOptions;
using agis::geodb::IndexKind;

std::unique_ptr<GeoDatabase> MakeDb(IndexKind kind, size_t instances,
                                    size_t rtree_fanout = 8) {
  DatabaseOptions options;
  options.index_kind = kind;
  options.world = agis::geom::BoundingBox(0, 0, 1000, 1000);
  options.rtree_max_entries = rtree_fanout;
  auto db = std::make_unique<GeoDatabase>("spatial", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)db->RegisterClass(std::move(cls));
  (void)agis::workload::AddSyntheticInstances(db.get(), "P", instances, 23,
                                              options.world);
  return db;
}

GetClassOptions WindowQuery(agis::Rng* rng) {
  GetClassOptions q;
  q.use_buffer_pool = false;
  const double x = rng->UniformDouble(0, 900);
  const double y = rng->UniformDouble(0, 900);
  q.window = agis::geom::BoundingBox(x, y, x + 100, y + 100);  // 1% of area.
  return q;
}

void RunWindowQueries(GeoDatabase* db, benchmark::State& state) {
  agis::Rng rng(31);
  for (auto _ : state) {
    auto q = WindowQuery(&rng);
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WindowQuery_RTree(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_RTree)->RangeMultiplier(10)->Range(100, 100000);

void BM_WindowQuery_Grid(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kGrid, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_Grid)->RangeMultiplier(10)->Range(100, 100000);

void BM_WindowQuery_LinearScan(benchmark::State& state) {
  auto db =
      MakeDb(IndexKind::kLinearScan, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_LinearScan)->RangeMultiplier(10)->Range(100, 100000);

// Filter/refine: exact topological relation against a region polygon.
void BM_SpatialRelationRefine(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  agis::geom::Polygon region;
  region.outer = {{200, 200}, {500, 250}, {550, 500}, {300, 550}, {180, 400}};
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.spatial = agis::geodb::SpatialFilter{
      agis::geom::Geometry::FromPolygon(region),
      agis::geom::TopoRelation::kInside};
  for (auto _ : state) {
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SpatialRelationRefine)->RangeMultiplier(10)->Range(100, 10000);

// Ablation: R-tree fanout.
void BM_RTreeFanout(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, 20000,
                   static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["fanout"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RTreeFanout)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Build cost: bulk insertion into each index kind.
void BM_IndexBuild(benchmark::State& state) {
  const IndexKind kind = static_cast<IndexKind>(state.range(0));
  for (auto _ : state) {
    auto db = MakeDb(kind, 10000);
    benchmark::DoNotOptimize(db);
  }
  state.SetLabel(kind == IndexKind::kRTree
                     ? "rtree"
                     : (kind == IndexKind::kGrid ? "grid" : "linear"));
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C7: spatial selection for the presentation area ====\n"
              "Expected shape: R-tree and grid stay near-flat as extents\n"
              "grow (probe touches ~1%% of the area) while linear scan\n"
              "grows linearly; the crossover sits at small extents where\n"
              "the scan's simplicity wins.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
