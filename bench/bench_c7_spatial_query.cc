// Experiment C7 — spatial selection behind the presentation area:
// Get_Class with a viewport window across index implementations
// (R-tree / grid / linear scan) and extent sizes, plus the exact
// topological-relation refinement and R-tree fanout ablation.

#include <cstdio>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "geodb/database.h"
#include "spatial/rtree.h"
#include "workload/synthetic.h"

namespace {

using agis::geodb::DatabaseOptions;
using agis::geodb::GeoDatabase;
using agis::geodb::GetClassOptions;
using agis::geodb::IndexKind;

std::unique_ptr<GeoDatabase> MakeDb(IndexKind kind, size_t instances,
                                    size_t rtree_fanout = 8) {
  DatabaseOptions options;
  options.index_kind = kind;
  options.world = agis::geom::BoundingBox(0, 0, 1000, 1000);
  options.rtree_max_entries = rtree_fanout;
  auto db = std::make_unique<GeoDatabase>("spatial", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)db->RegisterClass(std::move(cls));
  (void)agis::workload::AddSyntheticInstances(db.get(), "P", instances, 23,
                                              options.world);
  return db;
}

GetClassOptions WindowQuery(agis::Rng* rng) {
  GetClassOptions q;
  q.use_buffer_pool = false;
  const double x = rng->UniformDouble(0, 900);
  const double y = rng->UniformDouble(0, 900);
  q.window = agis::geom::BoundingBox(x, y, x + 100, y + 100);  // 1% of area.
  return q;
}

void RunWindowQueries(GeoDatabase* db, benchmark::State& state) {
  agis::Rng rng(31);
  for (auto _ : state) {
    auto q = WindowQuery(&rng);
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_WindowQuery_RTree(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_RTree)->RangeMultiplier(10)->Range(100, 100000);

void BM_WindowQuery_Grid(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kGrid, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_Grid)->RangeMultiplier(10)->Range(100, 100000);

void BM_WindowQuery_LinearScan(benchmark::State& state) {
  auto db =
      MakeDb(IndexKind::kLinearScan, static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_LinearScan)->RangeMultiplier(10)->Range(100, 100000);

// Filter/refine: exact topological relation against a region polygon.
void BM_SpatialRelationRefine(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  agis::geom::Polygon region;
  region.outer = {{200, 200}, {500, 250}, {550, 500}, {300, 550}, {180, 400}};
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.spatial = agis::geodb::SpatialFilter{
      agis::geom::Geometry::FromPolygon(region),
      agis::geom::TopoRelation::kInside};
  for (auto _ : state) {
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SpatialRelationRefine)->RangeMultiplier(10)->Range(100, 10000);

// Ablation: R-tree fanout.
void BM_RTreeFanout(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, 20000,
                   static_cast<size_t>(state.range(0)));
  RunWindowQueries(db.get(), state);
  state.counters["fanout"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RTreeFanout)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// ---- Attribute-predicate selection (PR-2 read path) ------------------------

/// A class with scalar attributes worth indexing: `category` spreads
/// instances over 128 buckets (kEq selects ~0.8%), `height` is a dense
/// double for range predicates.
std::unique_ptr<GeoDatabase> MakePredicateDb(size_t instances, bool indexed) {
  DatabaseOptions options;
  options.auto_attribute_indexes = indexed;
  auto db = std::make_unique<GeoDatabase>("pred", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Int("category"));
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Double("height"));
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)db->RegisterClass(std::move(cls));
  agis::Rng rng(97);
  for (size_t i = 0; i < instances; ++i) {
    (void)db->Insert(
        "P", {{"category", agis::geodb::Value::Int(
                               static_cast<int64_t>(i % 128))},
              {"height", agis::geodb::Value::Double(rng.UniformDouble(0, 40))},
              {"loc", agis::geodb::Value::MakeGeometry(
                          agis::geom::Geometry::FromPoint(
                              {rng.UniformDouble(0, 1000),
                               rng.UniformDouble(0, 1000)}))}});
  }
  return db;
}

GetClassOptions CategoryEq(int64_t category) {
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.predicates.push_back(agis::geodb::AttrPredicate{
      "category", agis::geodb::CompareOp::kEq,
      agis::geodb::Value::Int(category)});
  return q;
}

void RunPredicateQueries(GeoDatabase* db, benchmark::State& state) {
  agis::Rng rng(5);
  for (auto _ : state) {
    auto result = db->GetClass(
        "P", CategoryEq(static_cast<int64_t>(rng.Uniform(128))));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["extent"] = static_cast<double>(state.range(0));
}

/// The planner answers the predicate from the hash index; the residual
/// loop touches only the ~0.8% of candidates that match.
void BM_PredicateQuery_Indexed(benchmark::State& state) {
  auto db = MakePredicateDb(static_cast<size_t>(state.range(0)), true);
  RunPredicateQueries(db.get(), state);
}
BENCHMARK(BM_PredicateQuery_Indexed)->RangeMultiplier(10)->Range(1000, 100000);

/// Baseline: same query, no attribute indexes — every instance is
/// fetched and compared.
void BM_PredicateQuery_Scan(benchmark::State& state) {
  auto db = MakePredicateDb(static_cast<size_t>(state.range(0)), false);
  RunPredicateQueries(db.get(), state);
}
BENCHMARK(BM_PredicateQuery_Scan)->RangeMultiplier(10)->Range(1000, 100000);

/// Range predicate through the ordered index, intersected with a
/// viewport window from the spatial index.
void BM_WindowPlusRange_Indexed(benchmark::State& state) {
  auto db = MakePredicateDb(static_cast<size_t>(state.range(0)), true);
  agis::Rng rng(13);
  for (auto _ : state) {
    GetClassOptions q;
    q.use_buffer_pool = false;
    const double x = rng.UniformDouble(0, 800);
    const double y = rng.UniformDouble(0, 800);
    q.window = agis::geom::BoundingBox(x, y, x + 200, y + 200);
    q.predicates.push_back(agis::geodb::AttrPredicate{
        "height", agis::geodb::CompareOp::kGe,
        agis::geodb::Value::Double(35.0)});
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowPlusRange_Indexed)->RangeMultiplier(10)->Range(1000, 100000);

/// Residual scan partitioned across a worker pool (indexes off so the
/// residual dominates); Arg = pool threads, 0 = sequential baseline.
void BM_ParallelResidualScan(benchmark::State& state) {
  static std::unique_ptr<GeoDatabase> db;
  if (db == nullptr) db = MakePredicateDb(100000, false);
  std::unique_ptr<agis::ThreadPool> pool;
  if (state.range(0) > 0) {
    pool = std::make_unique<agis::ThreadPool>(
        static_cast<size_t>(state.range(0)));
    db->set_query_pool(pool.get());
  }
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.predicates.push_back(agis::geodb::AttrPredicate{
      "height", agis::geodb::CompareOp::kLt,
      agis::geodb::Value::Double(20.0)});
  for (auto _ : state) {
    auto result = db->GetClass("P", q);
    benchmark::DoNotOptimize(result);
  }
  db->set_query_pool(nullptr);
  state.counters["pool_threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ParallelResidualScan)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

// ---- STR bulk loading ------------------------------------------------------

std::vector<agis::spatial::IndexEntry> RandomEntries(size_t n) {
  agis::Rng rng(77);
  std::vector<agis::spatial::IndexEntry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    const double y = rng.UniformDouble(0, 1000);
    entries.push_back({static_cast<agis::spatial::EntryId>(i + 1),
                       agis::geom::BoundingBox(x, y, x + 1, y + 1)});
  }
  return entries;
}

void BM_RTreeBuild_STR(benchmark::State& state) {
  const auto entries = RandomEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    agis::spatial::RTree tree(8);
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree);
  }
  agis::spatial::RTree probe(8);
  probe.BulkLoad(entries);
  state.counters["avg_fill"] = probe.Quality().avg_fill;
  state.counters["height"] = static_cast<double>(probe.Quality().height);
}
BENCHMARK(BM_RTreeBuild_STR)->RangeMultiplier(10)->Range(1000, 100000);

void BM_RTreeBuild_Incremental(benchmark::State& state) {
  const auto entries = RandomEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    agis::spatial::RTree tree(8);
    for (const auto& e : entries) tree.Insert(e.id, e.box);
    benchmark::DoNotOptimize(tree);
  }
  agis::spatial::RTree probe(8);
  for (const auto& e : entries) probe.Insert(e.id, e.box);
  state.counters["avg_fill"] = probe.Quality().avg_fill;
  state.counters["height"] = static_cast<double>(probe.Quality().height);
}
BENCHMARK(BM_RTreeBuild_Incremental)->RangeMultiplier(10)->Range(1000, 100000);

/// Query latency on an STR-packed tree vs the incrementally grown one.
void BM_WindowQuery_RTreeStrPacked(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  db->RebuildSpatialIndexes();  // Replace the grown tree with STR.
  RunWindowQueries(db.get(), state);
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WindowQuery_RTreeStrPacked)
    ->RangeMultiplier(10)
    ->Range(100, 100000);

// Build cost: bulk insertion into each index kind.
void BM_IndexBuild(benchmark::State& state) {
  const IndexKind kind = static_cast<IndexKind>(state.range(0));
  for (auto _ : state) {
    auto db = MakeDb(kind, 10000);
    benchmark::DoNotOptimize(db);
  }
  state.SetLabel(kind == IndexKind::kRTree
                     ? "rtree"
                     : (kind == IndexKind::kGrid ? "grid" : "linear"));
}
BENCHMARK(BM_IndexBuild)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C7: spatial selection for the presentation area ====\n"
              "Expected shape: R-tree and grid stay near-flat as extents\n"
              "grow (probe touches ~1%% of the area) while linear scan\n"
              "grows linearly; the crossover sits at small extents where\n"
              "the scan's simplicity wins.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// ---- Versioned read path (PR-3 snapshots) ----------------------------------

/// Point reads at 100k objects: the deprecated raw-pointer path vs the
/// same lookup through a pinned snapshot. The snapshot path must stay
/// within ~10% — it adds one visibility check per probe, nothing else.
void BM_PointRead_RawPointer(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  const auto ids = *db->ScanExtent("P");
  agis::Rng rng(41);
  for (auto _ : state) {
    // The deprecated call is the measurement subject here: this bench
    // exists to compare it against the snapshot path below.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const auto* obj = db->FindObject(ids[rng.Uniform(ids.size())]);
#pragma GCC diagnostic pop
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PointRead_RawPointer)->Arg(100000);

void BM_PointRead_Snapshot(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  const auto ids = *db->ScanExtent("P");
  const agis::geodb::Snapshot snap = db->OpenSnapshot();
  agis::Rng rng(41);
  for (auto _ : state) {
    const auto* obj = db->FindObjectAt(snap, ids[rng.Uniform(ids.size())]);
    benchmark::DoNotOptimize(obj);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PointRead_Snapshot)->Arg(100000);

/// Extent scans: ScanExtentAt at the current epoch takes the fast path
/// (index-backed, no dead-list walk) and should track ScanExtent.
void BM_ScanExtent_Raw(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto ids = db->ScanExtent("P");
    benchmark::DoNotOptimize(ids);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanExtent_Raw)->RangeMultiplier(10)->Range(1000, 100000);

void BM_ScanExtent_Snapshot(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, static_cast<size_t>(state.range(0)));
  const agis::geodb::Snapshot snap = db->OpenSnapshot();
  for (auto _ : state) {
    auto ids = db->ScanExtentAt(snap, "P");
    benchmark::DoNotOptimize(ids);
  }
  state.counters["extent"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ScanExtent_Snapshot)->RangeMultiplier(10)->Range(1000, 100000);

/// Pin/unpin cost of the handle itself (every dispatcher window open
/// pays this once).
void BM_SnapshotOpenClose(benchmark::State& state) {
  auto db = MakeDb(IndexKind::kRTree, 10000);
  for (auto _ : state) {
    const agis::geodb::Snapshot snap = db->OpenSnapshot();
    benchmark::DoNotOptimize(snap.epoch());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotOpenClose);
