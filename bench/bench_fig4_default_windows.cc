// Experiment F4 — Figure 4, the default interface windows. Regenerates
// the three default windows (Schema / Class set / Instance) for the
// phone_net database, then measures generic window construction across
// schema width and extent size.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "builder/interface_builder.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"
#include "workload/synthetic.h"

namespace {

using agis::builder::BuildOptions;
using agis::builder::GenericInterfaceBuilder;

struct Rig {
  std::unique_ptr<agis::geodb::GeoDatabase> db;
  agis::uilib::InterfaceObjectLibrary library;
  agis::carto::StyleRegistry styles;
  std::unique_ptr<GenericInterfaceBuilder> builder;

  explicit Rig(std::unique_ptr<agis::geodb::GeoDatabase> database)
      : db(std::move(database)) {
    (void)library.RegisterKernelPrototypes();
    (void)RegisterStandardGisPrototypes(&library);
    (void)styles.RegisterStandardFormats();
    builder = std::make_unique<GenericInterfaceBuilder>(db.get(), &library,
                                                        &styles);
  }
};

Rig MakePhoneRig() {
  auto db = std::make_unique<agis::geodb::GeoDatabase>("phone_net");
  agis::workload::PhoneNetConfig config;
  config.num_poles = 80;
  (void)agis::workload::BuildPhoneNetwork(db.get(), config);
  return Rig(std::move(db));
}

Rig MakeSyntheticRig(size_t classes, size_t attrs, size_t instances) {
  auto db = std::make_unique<agis::geodb::GeoDatabase>("synthetic");
  agis::workload::SyntheticSchemaConfig config;
  config.num_classes = classes;
  config.attrs_per_class = attrs;
  config.instances_per_class = instances;
  (void)agis::workload::BuildSyntheticSchema(db.get(), config);
  return Rig(std::move(db));
}

void PrintFigure4() {
  std::printf("==== Figure 4: default interface windows (phone_net) ====\n");
  Rig rig = MakePhoneRig();
  agis::UserContext ctx;
  ctx.user = "generic_user";

  auto schema = rig.builder->BuildSchemaWindow(nullptr, ctx);
  std::printf("-- Schema window --\n%s",
              schema.value()->ToTreeString().c_str());
  auto cls = rig.builder->BuildClassSetWindow("Pole", nullptr, ctx);
  std::printf("-- Class set window --\n%s",
              cls.value()->ToTreeString().c_str());
  const auto* area = cls.value()->FindDescendant("presentation");
  std::printf("%s", area->GetProperty(agis::uilib::kPropContent).c_str());
  const auto poles = rig.db->ScanExtent("Pole");
  auto inst =
      rig.builder->BuildInstanceWindow(poles.value().front(), nullptr, ctx);
  std::printf("-- Instance window --\n%s\n",
              inst.value()->ToTreeString().c_str());
}

void BM_SchemaWindowVsClasses(benchmark::State& state) {
  Rig rig = MakeSyntheticRig(static_cast<size_t>(state.range(0)), 6, 1);
  agis::UserContext ctx;
  for (auto _ : state) {
    auto window = rig.builder->BuildSchemaWindow(nullptr, ctx);
    benchmark::DoNotOptimize(window);
  }
  state.counters["classes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SchemaWindowVsClasses)->RangeMultiplier(4)->Range(4, 256);

void BM_ClassWindowVsExtent(benchmark::State& state) {
  Rig rig = MakeSyntheticRig(1, 6, static_cast<size_t>(state.range(0)));
  agis::UserContext ctx;
  BuildOptions options;
  options.query.use_buffer_pool = false;  // Measure the uncached path.
  for (auto _ : state) {
    auto window =
        rig.builder->BuildClassSetWindow("class_0", nullptr, ctx, options);
    benchmark::DoNotOptimize(window);
  }
  state.counters["instances"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ClassWindowVsExtent)->RangeMultiplier(4)->Range(16, 4096);

void BM_InstanceWindowVsAttrs(benchmark::State& state) {
  Rig rig = MakeSyntheticRig(1, static_cast<size_t>(state.range(0)), 4);
  agis::UserContext ctx;
  const auto ids = rig.db->ScanExtent("class_0");
  for (auto _ : state) {
    auto window = rig.builder->BuildInstanceWindow(ids.value().front(),
                                                   nullptr, ctx);
    benchmark::DoNotOptimize(window);
  }
  state.counters["attrs"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InstanceWindowVsAttrs)->RangeMultiplier(4)->Range(4, 256);

void BM_Fig4FullTriple(benchmark::State& state) {
  Rig rig = MakePhoneRig();
  agis::UserContext ctx;
  const auto poles = rig.db->ScanExtent("Pole");
  BuildOptions options;
  options.query.use_buffer_pool = false;
  for (auto _ : state) {
    auto schema = rig.builder->BuildSchemaWindow(nullptr, ctx);
    auto cls =
        rig.builder->BuildClassSetWindow("Pole", nullptr, ctx, options);
    auto inst = rig.builder->BuildInstanceWindow(poles.value().front(),
                                                 nullptr, ctx);
    benchmark::DoNotOptimize(schema);
    benchmark::DoNotOptimize(cls);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_Fig4FullTriple);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
