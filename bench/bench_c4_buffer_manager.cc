// Experiment C4 — display-buffer management. The paper singles out
// large display buffers as a DBMS-style problem the GIS interface must
// handle; this bench measures the LRU buffer pool under a revisiting
// browse pattern: query latency with the pool on/off and hit ratios
// across capacity/working-set ratios.

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "base/strutil.h"
#include "geodb/database.h"
#include "workload/synthetic.h"

namespace {

/// A database whose single class holds `instances` points; browsing
/// revisits `regions` distinct viewport windows.
std::unique_ptr<agis::geodb::GeoDatabase> MakeDb(size_t instances,
                                                 size_t pool_bytes) {
  agis::geodb::DatabaseOptions options;
  options.buffer_pool_bytes = pool_bytes;
  auto db = std::make_unique<agis::geodb::GeoDatabase>("bufbench", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)cls.AddAttribute(agis::geodb::AttributeDef::String("tag"));
  (void)db->RegisterClass(std::move(cls));
  (void)agis::workload::AddSyntheticInstances(
      db.get(), "P", instances, 3, agis::geom::BoundingBox(0, 0, 1000, 1000));
  return db;
}

agis::geodb::GetClassOptions RegionQuery(size_t region, size_t regions,
                                         bool use_pool) {
  agis::geodb::GetClassOptions q;
  q.use_buffer_pool = use_pool;
  const double slice = 1000.0 / static_cast<double>(regions);
  const double x = slice * static_cast<double>(region);
  q.window = agis::geom::BoundingBox(x, 0, x + slice, 1000);
  return q;
}

void BM_BrowseRevisit_PoolOn(benchmark::State& state) {
  const size_t regions = 16;
  auto db = MakeDb(static_cast<size_t>(state.range(0)), 64 << 20);
  agis::Rng rng(7);
  for (auto _ : state) {
    // 80% revisits of a hot region set, 20% cold regions.
    const size_t region = rng.Bernoulli(0.8) ? rng.Uniform(4)
                                             : 4 + rng.Uniform(regions - 4);
    auto result = db->GetClass("P", RegionQuery(region, regions, true));
    benchmark::DoNotOptimize(result);
  }
  state.counters["hit_ratio"] = db->buffer_pool().stats().HitRatio();
  state.counters["instances"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BrowseRevisit_PoolOn)->RangeMultiplier(4)->Range(256, 16384);

void BM_BrowseRevisit_PoolOff(benchmark::State& state) {
  const size_t regions = 16;
  auto db = MakeDb(static_cast<size_t>(state.range(0)), 64 << 20);
  agis::Rng rng(7);
  for (auto _ : state) {
    const size_t region = rng.Bernoulli(0.8) ? rng.Uniform(4)
                                             : 4 + rng.Uniform(regions - 4);
    auto result = db->GetClass("P", RegionQuery(region, regions, false));
    benchmark::DoNotOptimize(result);
  }
  state.counters["instances"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BrowseRevisit_PoolOff)->RangeMultiplier(4)->Range(256, 16384);

// Hit ratio as the pool shrinks below the working set.
void BM_CapacitySweep(benchmark::State& state) {
  const size_t regions = 16;
  const size_t pool_bytes = static_cast<size_t>(state.range(0)) * 1024;
  auto db = MakeDb(8192, pool_bytes);
  agis::Rng rng(7);
  for (auto _ : state) {
    const size_t region = rng.Uniform(regions);
    auto result = db->GetClass("P", RegionQuery(region, regions, true));
    benchmark::DoNotOptimize(result);
  }
  state.counters["hit_ratio"] = db->buffer_pool().stats().HitRatio();
  state.counters["pool_kb"] = static_cast<double>(state.range(0));
  state.counters["evictions"] =
      static_cast<double>(db->buffer_pool().stats().evictions);
}
BENCHMARK(BM_CapacitySweep)->RangeMultiplier(4)->Range(16, 16384);

// Invalidation cost: interleave writes (which flush the class prefix)
// with reads.
void BM_WriteInvalidation(benchmark::State& state) {
  auto db = MakeDb(4096, 64 << 20);
  agis::Rng rng(7);
  size_t step = 0;
  for (auto _ : state) {
    if (++step % 8 == 0) {
      (void)db->Insert(
          "P", {{"loc", agis::geodb::Value::MakeGeometry(
                            agis::geom::Geometry::FromPoint(
                                {rng.UniformDouble(0, 1000),
                                 rng.UniformDouble(0, 1000)}))}});
    }
    auto result = db->GetClass("P", RegionQuery(step % 16, 16, true));
    benchmark::DoNotOptimize(result);
  }
  state.counters["hit_ratio"] = db->buffer_pool().stats().HitRatio();
}
BENCHMARK(BM_WriteInvalidation);

// ---- Concurrent hit path (PR-2 sharded pool) -------------------------------

/// One database per shard count, shared across the benchmark's threads
/// and prewarmed so every region is resident: the measurement is pure
/// cache-hit throughput against the sharded LRU.
agis::geodb::GeoDatabase* SharedDb(size_t shards) {
  static std::map<size_t, std::unique_ptr<agis::geodb::GeoDatabase>> dbs;
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = dbs[shards];
  if (slot == nullptr) {
    agis::geodb::DatabaseOptions options;
    options.buffer_pool_bytes = 64 << 20;
    options.buffer_pool_shards = shards;
    slot = std::make_unique<agis::geodb::GeoDatabase>("bufbench", options);
    agis::geodb::ClassDef cls("P", "");
    (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
    (void)cls.AddAttribute(agis::geodb::AttributeDef::String("tag"));
    (void)slot->RegisterClass(std::move(cls));
    (void)agis::workload::AddSyntheticInstances(
        slot.get(), "P", 8192, 3, agis::geom::BoundingBox(0, 0, 1000, 1000));
    for (size_t region = 0; region < 16; ++region) {
      (void)slot->GetClass("P", RegionQuery(region, 16, true));
    }
  }
  return slot.get();
}

void RunConcurrentBrowse(agis::geodb::GeoDatabase* db,
                         benchmark::State& state) {
  agis::Rng rng(7 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    auto result = db->GetClass("P", RegionQuery(rng.Uniform(16), 16, true));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (state.thread_index() == 0) {
    state.counters["hit_ratio"] = db->buffer_pool().stats().HitRatio();
  }
}

void BM_ConcurrentBrowse_Sharded(benchmark::State& state) {
  RunConcurrentBrowse(SharedDb(8), state);
}
BENCHMARK(BM_ConcurrentBrowse_Sharded)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

/// Ablation: the same workload against a single-shard (one-lock) pool.
void BM_ConcurrentBrowse_OneShard(benchmark::State& state) {
  RunConcurrentBrowse(SharedDb(1), state);
}
BENCHMARK(BM_ConcurrentBrowse_OneShard)
    ->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C4: display buffer management ====\n"
              "PoolOn should beat PoolOff under the 80/20 revisit pattern;\n"
              "the capacity sweep shows the hit-ratio knee where the pool\n"
              "no longer covers the hot set; write invalidation bounds the\n"
              "benefit under update-heavy sessions.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
