// Experiment C5 — topological constraint maintenance through active
// rules (the [11] prototype the paper builds on). Measures insert
// throughput with 0/1/3 installed constraints, the effect of the
// spatial-index narrowing on clearance checks, and full-database
// audits.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "active/db_bridge.h"
#include "active/topology_guard.h"
#include "base/rng.h"
#include "geodb/database.h"

namespace {

using agis::active::TopologyConstraint;

struct Rig {
  std::unique_ptr<agis::geodb::GeoDatabase> db;
  std::unique_ptr<agis::active::RuleEngine> engine;
  std::unique_ptr<agis::active::DbEventBridge> bridge;
  std::unique_ptr<agis::active::TopologyGuard> guard;

  Rig() {
    db = std::make_unique<agis::geodb::GeoDatabase>("topo");
    engine = std::make_unique<agis::active::RuleEngine>();
    bridge = std::make_unique<agis::active::DbEventBridge>(engine.get());
    db->AddEventSink(bridge.get());
    guard = std::make_unique<agis::active::TopologyGuard>(db.get(),
                                                          engine.get());
    agis::geodb::ClassDef region("Region", "");
    (void)region.AddAttribute(agis::geodb::AttributeDef::Geometry("area"));
    (void)db->RegisterClass(std::move(region));
    agis::geodb::ClassDef pole("Pole", "");
    (void)pole.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
    (void)db->RegisterClass(std::move(pole));
    agis::geodb::ClassDef duct("Duct", "");
    (void)duct.AddAttribute(agis::geodb::AttributeDef::Geometry("path"));
    (void)db->RegisterClass(std::move(duct));

    // One covering region + a 4x4 grid of sub-regions.
    agis::geom::Polygon world;
    world.outer = {{0, 0}, {1000, 0}, {1000, 1000}, {0, 1000}};
    (void)db->Insert("Region",
                     {{"area", agis::geodb::Value::MakeGeometry(
                                   agis::geom::Geometry::FromPolygon(world))}});
  }

  ~Rig() { db->RemoveEventSink(bridge.get()); }

  void InstallConstraints(int count) {
    if (count >= 1) {
      TopologyConstraint inside;
      inside.name = "pole_in_region";
      inside.subject_class = "Pole";
      inside.relation = agis::geom::TopoRelation::kInside;
      inside.object_class = "Region";
      inside.quantifier = TopologyConstraint::Quantifier::kExists;
      (void)guard->AddConstraint(inside);
    }
    if (count >= 2) {
      TopologyConstraint spacing;
      spacing.name = "pole_clearance";
      spacing.subject_class = "Pole";
      spacing.relation = agis::geom::TopoRelation::kDisjoint;
      spacing.object_class = "Pole";
      spacing.min_distance = 0.5;
      (void)guard->AddConstraint(spacing);
    }
    if (count >= 3) {
      TopologyConstraint duct_clear;
      duct_clear.name = "pole_duct_clearance";
      duct_clear.subject_class = "Pole";
      duct_clear.relation = agis::geom::TopoRelation::kDisjoint;
      duct_clear.object_class = "Duct";
      duct_clear.min_distance = 0.1;
      (void)guard->AddConstraint(duct_clear);
    }
  }
};

void InsertPoles(Rig* rig, benchmark::State& state) {
  agis::Rng rng(11);
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (auto _ : state) {
    auto id = rig->db->Insert(
        "Pole", {{"loc", agis::geodb::Value::MakeGeometry(
                             agis::geom::Geometry::FromPoint(
                                 {rng.UniformDouble(1, 999),
                                  rng.UniformDouble(1, 999)}))}});
    if (id.ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["accepted"] = static_cast<double>(accepted);
  state.counters["rejected"] = static_cast<double>(rejected);
}

void BM_InsertVsConstraintCount(benchmark::State& state) {
  Rig rig;
  rig.InstallConstraints(static_cast<int>(state.range(0)));
  InsertPoles(&rig, state);
  state.counters["constraints"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_InsertVsConstraintCount)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Clearance-check cost vs existing pole density: the inflated-window
// index probe should keep this near-flat.
void BM_ClearanceVsDensity(benchmark::State& state) {
  Rig rig;
  agis::Rng rng(13);
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)rig.db->Insert(
        "Pole", {{"loc", agis::geodb::Value::MakeGeometry(
                             agis::geom::Geometry::FromPoint(
                                 {rng.UniformDouble(1, 999),
                                  rng.UniformDouble(1, 999)}))}});
  }
  rig.InstallConstraints(2);
  InsertPoles(&rig, state);
  state.counters["existing_poles"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ClearanceVsDensity)->RangeMultiplier(4)->Range(64, 16384);

void BM_FullAudit(benchmark::State& state) {
  Rig rig;
  agis::Rng rng(17);
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)rig.db->Insert(
        "Pole", {{"loc", agis::geodb::Value::MakeGeometry(
                             agis::geom::Geometry::FromPoint(
                                 {rng.UniformDouble(1, 999),
                                  rng.UniformDouble(1, 999)}))}});
  }
  rig.InstallConstraints(2);
  for (auto _ : state) {
    auto violations = rig.guard->CheckAll();
    benchmark::DoNotOptimize(violations);
  }
  state.counters["poles"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullAudit)->RangeMultiplier(4)->Range(64, 4096);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C5: topology constraints as active rules ====\n"
              "Insert throughput vs installed constraints shows the price\n"
              "of integrity maintenance; the density sweep validates the\n"
              "index-narrowed clearance check; FullAudit scales the\n"
              "offline CheckAll path.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
