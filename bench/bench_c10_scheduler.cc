// Experiment C10 — unified work-stealing scheduler. The rule engine,
// the query path, and storage decode used to fan out over private
// thread pools; run together they oversubscribed the host. This bench
// drives all three concurrently and compares the three-private-pools
// baseline against one shared TaskScheduler of the same worker count,
// reporting combined throughput and per-path p95 latency.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "active/engine.h"
#include "base/rng.h"
#include "base/strutil.h"
#include "base/task_scheduler.h"
#include "base/thread_pool.h"
#include "geodb/database.h"
#include "storage/snapshot_file.h"

namespace {

using agis::active::EcaRule;
using agis::active::Event;
using agis::active::RuleEngine;
using agis::active::RuleFamily;
using agis::active::WindowCustomization;
using agis::geodb::GeoDatabase;
using agis::geodb::GetClassOptions;

constexpr size_t kWorkers = 2;       // Matches the default on small hosts.
constexpr size_t kDbInstances = 40000;
constexpr size_t kSnapshotInstances = 20000;
// Burst rounds: each driver issues a fixed op count and the round's
// makespan is the measure — the interactive regime (a user action
// triggers rule dispatch, a map refresh, and a background restore at
// once, then the system goes quiet).
constexpr int kBurstRuleOps = 8;     // Batches of 64 events.
constexpr int kBurstQueryOps = 8;    // Residual-heavy scans.
constexpr int kBurstRestoreOps = 2;  // Snapshot loads.

// Sustained rounds: every driver loops its operation until the shared
// deadline, so all three paths stay simultaneously active for the
// whole round — the saturation regime.
constexpr int kRoundMs = 300;

const char* SnapshotPath() { return "/tmp/agis_bench_c10.agsnap"; }

/// Get_Class customization rules spread over users/categories/apps.
void PopulateRules(RuleEngine* engine, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    EcaRule rule;
    rule.name = agis::StrCat("rule_", i);
    rule.family = RuleFamily::kCustomization;
    rule.event_name = "Get_Class";
    rule.param_filters["class"] = agis::StrCat("class_", i % 8);
    switch (i % 3) {
      case 0:
        rule.condition.user = agis::StrCat("user_", i % 16);
        break;
      case 1:
        rule.condition.category = agis::StrCat("category_", i % 16);
        break;
      default:
        rule.condition.application = agis::StrCat("app_", i % 16);
        break;
    }
    WindowCustomization payload;
    payload.presentation_format = "pointFormat";
    rule.customization_action =
        [payload](const Event&) -> agis::Result<WindowCustomization> {
      return payload;
    };
    (void)engine->AddRule(std::move(rule));
  }
}

std::vector<Event> MakeEventBatch(size_t n) {
  std::vector<Event> events;
  events.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Event event;
    event.name = "Get_Class";
    event.context.user = agis::StrCat("user_", i % 16);
    event.context.category = agis::StrCat("category_", i % 16);
    event.context.application = agis::StrCat("app_", i % 16);
    event.params["class"] = agis::StrCat("class_", i % 8);
    events.push_back(std::move(event));
  }
  return events;
}

/// Unindexed instances with a scalar for residual-heavy predicates.
std::unique_ptr<GeoDatabase> MakeScanDb(size_t instances) {
  agis::geodb::DatabaseOptions options;
  options.auto_attribute_indexes = false;
  auto db = std::make_unique<GeoDatabase>("c10", options);
  agis::geodb::ClassDef cls("P", "");
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Double("height"));
  (void)cls.AddAttribute(agis::geodb::AttributeDef::Geometry("loc"));
  (void)db->RegisterClass(std::move(cls));
  agis::Rng rng(97);
  for (size_t i = 0; i < instances; ++i) {
    (void)db->Insert(
        "P", {{"height", agis::geodb::Value::Double(rng.UniformDouble(0, 40))},
              {"loc", agis::geodb::Value::MakeGeometry(
                          agis::geom::Geometry::FromPoint(
                              {rng.UniformDouble(0, 1000),
                               rng.UniformDouble(0, 1000)}))}});
  }
  return db;
}

GetClassOptions ResidualQuery() {
  GetClassOptions q;
  q.use_buffer_pool = false;
  q.predicates.push_back(agis::geodb::AttrPredicate{
      "height", agis::geodb::CompareOp::kLt,
      agis::geodb::Value::Double(20.0)});
  return q;
}

/// The fixture both configurations share; built once.
struct Fixture {
  std::unique_ptr<RuleEngine> engine;
  std::vector<Event> events;
  std::unique_ptr<GeoDatabase> db;

  Fixture() {
    engine = std::make_unique<RuleEngine>();
    PopulateRules(engine.get(), 512);
    engine->set_cache_capacity(0);  // Resolve for real every time.
    events = MakeEventBatch(64);
    db = MakeScanDb(kDbInstances);
    // Snapshot file the restore path loads over and over.
    auto source = MakeScanDb(kSnapshotInstances);
    const agis::geodb::Snapshot snap = source->OpenSnapshot();
    agis::storage::SnapshotWriteOptions write;
    write.records_per_block = 1024;  // ~20 blocks: a real decode fan-out.
    write.include_attr_indexes = false;
    auto info =
        agis::storage::WriteSnapshotFile(*source, snap, SnapshotPath(), write);
    if (!info.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   info.status().ToString().c_str());
      std::abort();
    }
  }
};

Fixture* GetFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1));
  return (*samples)[index];
}

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One combined-load round: three driver threads hammer the rule
/// batch path, the residual-scan path, and the restore path at once.
/// Burst mode (`round_ms` == 0): each driver issues its fixed op
/// count and stops. Sustained mode (`round_ms` > 0): each driver
/// loops until the shared deadline. `rule_arg`/`restore_arg` are
/// passed to the respective calls; the database must already have its
/// scheduler (or pool) attached.
template <typename RuleArg, typename RestoreArg>
void RunRound(Fixture* fix, int round_ms, RuleArg rule_arg,
              RestoreArg restore_arg, std::vector<double>* rule_ms,
              std::vector<double>* query_ms,
              std::vector<double>* restore_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(round_ms);
  const auto more = [round_ms, deadline](int issued, int burst_cap) {
    return round_ms > 0 ? Clock::now() < deadline : issued < burst_cap;
  };
  std::thread rules([&] {
    for (int i = 0; more(i, kBurstRuleOps); ++i) {
      const auto start = Clock::now();
      auto results = fix->engine->GetCustomizationBatch(fix->events, rule_arg);
      benchmark::DoNotOptimize(results);
      rule_ms->push_back(MsSince(start));
    }
  });
  std::thread queries([&] {
    const GetClassOptions q = ResidualQuery();
    for (int i = 0; more(i, kBurstQueryOps); ++i) {
      const auto start = Clock::now();
      auto result = fix->db->GetClass("P", q);
      benchmark::DoNotOptimize(result);
      query_ms->push_back(MsSince(start));
    }
  });
  std::thread restores([&] {
    for (int i = 0; more(i, kBurstRestoreOps); ++i) {
      const auto start = Clock::now();
      GeoDatabase target("c10");
      auto stats = agis::storage::LoadSnapshotFileInto(SnapshotPath(), &target,
                                                       restore_arg);
      benchmark::DoNotOptimize(stats);
      restore_ms->push_back(MsSince(start));
    }
  });
  rules.join();
  queries.join();
  restores.join();
}

void ReportRound(benchmark::State& state, std::vector<double>* rule_ms,
                 std::vector<double>* query_ms,
                 std::vector<double>* restore_ms) {
  state.SetItemsProcessed(static_cast<int64_t>(
      rule_ms->size() + query_ms->size() + restore_ms->size()));
  state.counters["rule_ops"] = static_cast<double>(rule_ms->size());
  state.counters["query_ops"] = static_cast<double>(query_ms->size());
  state.counters["restore_ops"] = static_cast<double>(restore_ms->size());
  state.counters["rule_p95_ms"] = Percentile(rule_ms, 0.95);
  state.counters["query_p95_ms"] = Percentile(query_ms, 0.95);
  state.counters["restore_p95_ms"] = Percentile(restore_ms, 0.95);
}

/// Baseline: the pre-unification deployment — one private pool per
/// consumer, each with its own workers (3x oversubscription).
void RunSeparatePools(benchmark::State& state, int round_ms) {
  Fixture* fix = GetFixture();
  agis::ThreadPool rule_pool(kWorkers);
  agis::ThreadPool query_pool(kWorkers);
  agis::ThreadPool decode_pool(kWorkers);
  fix->db->set_query_pool(&query_pool);
  std::vector<double> rule_ms, query_ms, restore_ms;
  for (auto _ : state) {
    RunRound(fix, round_ms, &rule_pool, &decode_pool, &rule_ms, &query_ms,
             &restore_ms);
  }
  fix->db->set_query_pool(nullptr);
  ReportRound(state, &rule_ms, &query_ms, &restore_ms);
  state.counters["threads"] = static_cast<double>(3 * kWorkers);
}

/// One scheduler shared by all three paths: same total demand, one
/// worker set, waiting threads help instead of blocking.
void RunSharedScheduler(benchmark::State& state, int round_ms) {
  Fixture* fix = GetFixture();
  agis::TaskScheduler scheduler(kWorkers);
  fix->db->set_task_scheduler(&scheduler);
  std::vector<double> rule_ms, query_ms, restore_ms;
  for (auto _ : state) {
    RunRound(fix, round_ms, &scheduler, &scheduler, &rule_ms, &query_ms,
             &restore_ms);
  }
  fix->db->set_task_scheduler(nullptr);
  ReportRound(state, &rule_ms, &query_ms, &restore_ms);
  state.counters["threads"] = static_cast<double>(kWorkers);
  const agis::SchedulerStats stats = scheduler.stats();
  state.counters["steals"] = static_cast<double>(stats.steals);
  state.counters["helped"] = static_cast<double>(stats.help_executed);
}

void BM_CombinedBurst_SeparatePools(benchmark::State& state) {
  RunSeparatePools(state, 0);
}
BENCHMARK(BM_CombinedBurst_SeparatePools)->Iterations(12)->UseRealTime();

void BM_CombinedBurst_SharedScheduler(benchmark::State& state) {
  RunSharedScheduler(state, 0);
}
BENCHMARK(BM_CombinedBurst_SharedScheduler)->Iterations(12)->UseRealTime();

void BM_CombinedSustained_SeparatePools(benchmark::State& state) {
  RunSeparatePools(state, kRoundMs);
}
BENCHMARK(BM_CombinedSustained_SeparatePools)->Iterations(6)->UseRealTime();

void BM_CombinedSustained_SharedScheduler(benchmark::State& state) {
  RunSharedScheduler(state, kRoundMs);
}
BENCHMARK(BM_CombinedSustained_SharedScheduler)->Iterations(6)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C10: unified scheduler vs per-subsystem pools ====\n"
              "Combined load: rule-batch dispatch + parallel Get_Class\n"
              "residual scans + snapshot restore, all at once. The shared\n"
              "scheduler should beat three private pools on combined\n"
              "items_per_second (less oversubscription; waiters help run\n"
              "tasks) and cut per-path p95 latency.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
