// Experiment C2 — most-specific-rule conflict resolution. Measures
// rule-selection latency as the installed rule set and the context
// population grow, and ablates the paper's single-winner policy
// against execute-all-merge.

#include <cstdio>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "active/engine.h"
#include "base/strutil.h"

namespace {

using agis::active::ConflictPolicy;
using agis::active::ContextPattern;
using agis::active::EcaRule;
using agis::active::Event;
using agis::active::RuleEngine;
using agis::active::RuleFamily;
using agis::active::WindowCustomization;

/// Installs `count` customization rules on Get_Class: one third
/// user-level, one third category-level, one third application-level,
/// spread over `contexts` distinct user/category/app populations and
/// `classes` class filters.
void PopulateRules(RuleEngine* engine, size_t count, size_t contexts,
                   size_t classes) {
  for (size_t i = 0; i < count; ++i) {
    EcaRule rule;
    rule.name = agis::StrCat("rule_", i);
    rule.family = RuleFamily::kCustomization;
    rule.event_name = "Get_Class";
    rule.param_filters["class"] =
        agis::StrCat("class_", classes == 0 ? 0 : i % classes);
    switch (i % 3) {
      case 0:
        rule.condition.user = agis::StrCat("user_", i % contexts);
        break;
      case 1:
        rule.condition.category = agis::StrCat("category_", i % contexts);
        break;
      default:
        rule.condition.application = agis::StrCat("app_", i % contexts);
        break;
    }
    WindowCustomization payload;
    payload.presentation_format = "pointFormat";
    rule.customization_action =
        [payload](const Event&) -> agis::Result<WindowCustomization> {
      return payload;
    };
    (void)engine->AddRule(std::move(rule));
  }
}

Event ProbeEvent(size_t contexts) {
  Event event;
  event.name = "Get_Class";
  event.context.user = "user_0";
  event.context.category = agis::StrCat("category_", contexts / 2);
  event.context.application = "app_0";
  event.params["class"] = "class_0";
  return event;
}

void BM_SelectionVsRuleCount(benchmark::State& state) {
  RuleEngine engine;
  const size_t rules = static_cast<size_t>(state.range(0));
  PopulateRules(&engine, rules, 16, 8);
  const Event event = ProbeEvent(16);
  for (auto _ : state) {
    auto cust = engine.GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_SelectionVsRuleCount)->RangeMultiplier(4)->Range(16, 16384);

// Cold path: memoization disabled, so every lookup walks the selection
// index. Isolates the index win from the cache win.
void BM_SelectionColdVsRuleCount(benchmark::State& state) {
  RuleEngine engine;
  const size_t rules = static_cast<size_t>(state.range(0));
  PopulateRules(&engine, rules, 16, 8);
  engine.set_cache_capacity(0);
  const Event event = ProbeEvent(16);
  for (auto _ : state) {
    auto cust = engine.GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_SelectionColdVsRuleCount)->RangeMultiplier(4)->Range(16, 16384);

// Rotating contexts defeat the memo even when it is enabled: each
// iteration probes a different user, so hits are rare and the indexed
// scan dominates. This is the realistic multi-user cold workload.
void BM_SelectionRotatingContexts(benchmark::State& state) {
  RuleEngine engine;
  const size_t contexts = 64;
  PopulateRules(&engine, static_cast<size_t>(state.range(0)), contexts, 8);
  std::vector<Event> events;
  for (size_t u = 0; u < contexts; ++u) {
    Event event = ProbeEvent(contexts);
    event.context.user = agis::StrCat("user_", u);
    events.push_back(std::move(event));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto cust = engine.GetCustomization(events[i++ % events.size()]);
    benchmark::DoNotOptimize(cust);
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SelectionRotatingContexts)->RangeMultiplier(4)->Range(16, 16384);

void BM_SelectionVsContextPopulation(benchmark::State& state) {
  RuleEngine engine;
  const size_t contexts = static_cast<size_t>(state.range(0));
  PopulateRules(&engine, 4096, contexts, 8);
  const Event event = ProbeEvent(contexts);
  for (auto _ : state) {
    auto cust = engine.GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.counters["contexts"] = static_cast<double>(contexts);
}
BENCHMARK(BM_SelectionVsContextPopulation)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

void BM_PolicyAblation(benchmark::State& state) {
  const ConflictPolicy policy = state.range(0) == 0
                                    ? ConflictPolicy::kMostSpecific
                                    : ConflictPolicy::kExecuteAllMerge;
  RuleEngine engine(policy);
  // Contexts=1 makes many rules match simultaneously, stressing the
  // merge path.
  PopulateRules(&engine, 1024, 1, 1);
  Event event;
  event.name = "Get_Class";
  event.context.user = "user_0";
  event.context.category = "category_0";
  event.context.application = "app_0";
  event.params["class"] = "class_0";
  for (auto _ : state) {
    auto cust = engine.GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.SetLabel(policy == ConflictPolicy::kMostSpecific
                     ? "most_specific"
                     : "execute_all_merge");
}
BENCHMARK(BM_PolicyAblation)->Arg(0)->Arg(1);

void BM_NonMatchingEventFastPath(benchmark::State& state) {
  RuleEngine engine;
  PopulateRules(&engine, 8192, 16, 8);
  Event event;
  event.name = "Get_Value";  // No rules registered on this event.
  for (auto _ : state) {
    auto cust = engine.GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
}
BENCHMARK(BM_NonMatchingEventFastPath);

void BM_ShadowDiagnostics(benchmark::State& state) {
  RuleEngine engine;
  PopulateRules(&engine, static_cast<size_t>(state.range(0)), 16, 8);
  for (auto _ : state) {
    auto shadows = engine.FindShadowedRules();
    benchmark::DoNotOptimize(shadows);
  }
  state.counters["rules"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ShadowDiagnostics)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C2: most-specific-rule selection scaling ====\n"
              "Selection is indexed by event name and filtered by class\n"
              "param, so latency should grow with the *matching* subset,\n"
              "not the total rule count; the execute-all ablation shows\n"
              "what the paper's single-winner policy saves.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
