// Experiment C1 — the paper's core economic claim: dynamic active
// customization costs little over the generic interface and avoids
// hardwired per-application code. Three variants of the same window
// build:
//   hardwired : customization resolved at "compile time" (payload
//               passed straight to the builder — what a per-app
//               interface would do),
//   generic   : default presentation, no rules installed,
//   active    : full pipeline (event → rule selection → build),
// swept across schema sizes and installed-rule counts.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/active_interface_system.h"
#include "custlang/compiler.h"
#include "workload/synthetic.h"

namespace {

using agis::core::ActiveInterfaceSystem;

std::unique_ptr<ActiveInterfaceSystem> MakeSystem(size_t classes,
                                                  size_t extra_rules) {
  auto sys = std::make_unique<ActiveInterfaceSystem>("synthetic");
  agis::workload::SyntheticSchemaConfig config;
  config.num_classes = classes;
  config.attrs_per_class = 6;
  config.instances_per_class = 50;
  (void)agis::workload::BuildSyntheticSchema(&sys->db(), config);

  agis::workload::DirectiveSweepConfig sweep;
  sweep.num_directives = extra_rules;
  sweep.num_classes = classes;
  for (const auto& directive : agis::workload::GenerateDirectives(sweep)) {
    (void)sys->InstallDirective(directive);
  }
  agis::UserContext ctx;
  ctx.user = "user_0";
  ctx.category = "category_0";
  ctx.application = "app_0";
  sys->dispatcher().set_context(ctx);
  return sys;
}

void BM_Hardwired(benchmark::State& state) {
  auto sys = MakeSystem(static_cast<size_t>(state.range(0)), 0);
  // The payload a hardwired interface would have compiled in.
  agis::active::WindowCustomization payload;
  payload.target_class = "class_0";
  payload.control_widget = "class_control";
  payload.presentation_format = "pointFormat";
  agis::UserContext ctx;
  agis::builder::BuildOptions options;
  options.query.use_buffer_pool = false;
  for (auto _ : state) {
    auto window = sys->builder().BuildClassSetWindow("class_0", &payload,
                                                     ctx, options);
    benchmark::DoNotOptimize(window);
  }
  state.counters["classes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Hardwired)->RangeMultiplier(4)->Range(4, 64);

void BM_GenericDefault(benchmark::State& state) {
  auto sys = MakeSystem(static_cast<size_t>(state.range(0)), 0);
  agis::UserContext ctx;
  agis::builder::BuildOptions options;
  options.query.use_buffer_pool = false;
  for (auto _ : state) {
    auto window =
        sys->builder().BuildClassSetWindow("class_0", nullptr, ctx, options);
    benchmark::DoNotOptimize(window);
  }
  state.counters["classes"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_GenericDefault)->RangeMultiplier(4)->Range(4, 64);

void BM_ActiveCustomized(benchmark::State& state) {
  auto sys = MakeSystem(8, static_cast<size_t>(state.range(0)));
  agis::builder::BuildOptions options;
  options.query.use_buffer_pool = false;
  sys->dispatcher().set_build_options(options);
  for (auto _ : state) {
    auto window = sys->dispatcher().OpenClassWindow("class_0");
    benchmark::DoNotOptimize(window);
  }
  state.counters["installed_rules"] =
      static_cast<double>(sys->engine().NumRules());
}
BENCHMARK(BM_ActiveCustomized)->RangeMultiplier(4)->Range(1, 1024);

// Overhead isolated to the rule-selection step: the active pipeline's
// delta over handing the builder a precompiled payload.
void BM_SelectionStepOnly(benchmark::State& state) {
  auto sys = MakeSystem(8, static_cast<size_t>(state.range(0)));
  agis::active::Event event;
  event.name = agis::active::kEventGetClass;
  event.context.user = "user_0";
  event.context.category = "category_0";
  event.context.application = "app_0";
  event.params["class"] = "class_0";
  for (auto _ : state) {
    auto cust = sys->engine().GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.counters["installed_rules"] =
      static_cast<double>(sys->engine().NumRules());
}
BENCHMARK(BM_SelectionStepOnly)->RangeMultiplier(4)->Range(1, 1024);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C1: dynamic customization overhead vs hardwired ====\n"
              "Compare BM_Hardwired (precompiled payload), BM_GenericDefault\n"
              "(no customization), and BM_ActiveCustomized (full event →\n"
              "rule-selection → build pipeline). The paper's claim holds if\n"
              "the active path tracks the hardwired path closely, with the\n"
              "selection step (BM_SelectionStepOnly) a small constant.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
