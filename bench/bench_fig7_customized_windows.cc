// Experiment F7 — Figure 7, the customized interface windows.
// Regenerates the customized Class-set and Instance windows under the
// <juliano, pole_manager> context and measures the full customized
// interaction (event → rule selection → build) against the generic one.

#include <cstdio>
#include <memory>

#include <benchmark/benchmark.h>

#include "core/active_interface_system.h"
#include "uilib/widget_props.h"
#include "workload/phone_net.h"

namespace {

std::unique_ptr<agis::core::ActiveInterfaceSystem> MakeSystem(
    bool install_directive) {
  auto sys = std::make_unique<agis::core::ActiveInterfaceSystem>("phone_net");
  agis::workload::PhoneNetConfig config;
  config.num_poles = 80;
  (void)agis::workload::BuildPhoneNetwork(&sys->db(), config);
  if (install_directive) {
    (void)sys->InstallCustomization(agis::workload::Fig6DirectiveSource());
  }
  agis::UserContext ctx;
  ctx.user = "juliano";
  ctx.application = "pole_manager";
  sys->dispatcher().set_context(ctx);
  return sys;
}

void PrintFigure7() {
  std::printf("==== Figure 7: customized interface windows ====\n");
  auto sys = MakeSystem(/*install_directive=*/true);
  (void)sys->dispatcher().OpenSchemaWindow();
  const auto* cls = sys->dispatcher().FindWindow("Class set: Pole");
  std::printf("-- customized Class set window --\n%s",
              cls->ToTreeString().c_str());
  const auto* area = cls->FindDescendant("presentation");
  std::printf("style=%s\n%s", area->GetProperty(agis::uilib::kPropStyle).c_str(),
              area->GetProperty(agis::uilib::kPropContent).c_str());
  const auto poles = sys->db().ScanExtent("Pole");
  auto inst = sys->dispatcher().OpenInstanceWindow(poles.value().front());
  std::printf("-- customized Instance window --\n%s\n",
              inst.value()->ToTreeString().c_str());
}

void BM_CustomizedBrowseSession(benchmark::State& state) {
  auto sys = MakeSystem(true);
  const auto poles = sys->db().ScanExtent("Pole");
  for (auto _ : state) {
    auto schema = sys->dispatcher().OpenSchemaWindow();
    auto inst = sys->dispatcher().OpenInstanceWindow(poles.value().front());
    benchmark::DoNotOptimize(schema);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_CustomizedBrowseSession);

void BM_GenericBrowseSession(benchmark::State& state) {
  auto sys = MakeSystem(false);
  const auto poles = sys->db().ScanExtent("Pole");
  for (auto _ : state) {
    auto schema = sys->dispatcher().OpenSchemaWindow();
    auto cls = sys->dispatcher().OpenClassWindow("Pole");
    auto inst = sys->dispatcher().OpenInstanceWindow(poles.value().front());
    benchmark::DoNotOptimize(schema);
    benchmark::DoNotOptimize(cls);
    benchmark::DoNotOptimize(inst);
  }
}
BENCHMARK(BM_GenericBrowseSession);

void BM_CustomizedClassWindowOnly(benchmark::State& state) {
  auto sys = MakeSystem(true);
  for (auto _ : state) {
    auto window = sys->dispatcher().OpenClassWindow("Pole");
    benchmark::DoNotOptimize(window);
  }
}
BENCHMARK(BM_CustomizedClassWindowOnly);

void BM_CustomizedInstanceWindowOnly(benchmark::State& state) {
  auto sys = MakeSystem(true);
  const auto poles = sys->db().ScanExtent("Pole");
  for (auto _ : state) {
    auto window =
        sys->dispatcher().OpenInstanceWindow(poles.value().front());
    benchmark::DoNotOptimize(window);
  }
}
BENCHMARK(BM_CustomizedInstanceWindowOnly);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
