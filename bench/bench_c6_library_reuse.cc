// Experiment C6 — library reuse. The paper reports the model carried a
// 10000-LoC / 100-distinct-window interface system [14]; this bench
// builds 100+ distinct windows from library prototypes vs constructing
// each widget tree from scratch, and scales prototype-registry lookup.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "base/strutil.h"
#include "uilib/library.h"
#include "uilib/widget_props.h"

namespace {

using agis::uilib::InterfaceObject;
using agis::uilib::InterfaceObjectLibrary;
using agis::uilib::MakeWidget;
using agis::uilib::WidgetKind;

/// Hand-rolls the map-selection panel without the library (what a
/// per-application interface would code for each window).
std::unique_ptr<InterfaceObject> BuildMapSelectionFromScratch(int variant) {
  auto panel = MakeWidget(WidgetKind::kPanel,
                          agis::StrCat("map_selection_", variant));
  panel->SetProperty("label", agis::StrCat("Map selection ", variant));
  panel->AddChild(MakeWidget(WidgetKind::kList, "available_maps"));
  panel->AddChild(MakeWidget(WidgetKind::kList, "chosen_maps"));
  auto* region = panel->AddChild(
      MakeWidget(WidgetKind::kTextField, "region_name"));
  region->SetProperty("label", "Region");
  auto* ops = panel->AddChild(MakeWidget(WidgetKind::kPanel, "ops"));
  for (const char* op : {"add", "remove", "open"}) {
    ops->AddChild(MakeWidget(WidgetKind::kButton, op))
        ->SetProperty("label", op);
  }
  return panel;
}

void BM_HundredWindowsFromLibrary(benchmark::State& state) {
  InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  (void)RegisterStandardGisPrototypes(&library);
  for (auto _ : state) {
    std::vector<std::unique_ptr<InterfaceObject>> windows;
    windows.reserve(100);
    for (int i = 0; i < 100; ++i) {
      auto window = MakeWidget(WidgetKind::kWindow,
                               agis::StrCat("window_", i));
      auto panel = library.Instantiate("map_selection_panel").value();
      panel->set_name(agis::StrCat("selection_", i));
      panel->SetProperty("label", agis::StrCat("Map selection ", i));
      window->AddChild(std::move(panel));
      window->AddChild(library.Instantiate("class_control").value());
      windows.push_back(std::move(window));
    }
    benchmark::DoNotOptimize(windows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_HundredWindowsFromLibrary);

void BM_HundredWindowsFromScratch(benchmark::State& state) {
  for (auto _ : state) {
    std::vector<std::unique_ptr<InterfaceObject>> windows;
    windows.reserve(100);
    for (int i = 0; i < 100; ++i) {
      auto window = MakeWidget(WidgetKind::kWindow,
                               agis::StrCat("window_", i));
      window->AddChild(BuildMapSelectionFromScratch(i));
      auto control = MakeWidget(WidgetKind::kPanel, "class_control");
      auto* toggle = control->AddChild(
          MakeWidget(WidgetKind::kButton, "visible_toggle"));
      toggle->SetProperty("label", "Visible");
      toggle->SetProperty("state", "on");
      window->AddChild(std::move(control));
      windows.push_back(std::move(window));
    }
    benchmark::DoNotOptimize(windows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_HundredWindowsFromScratch);

void BM_RegistryLookupScaling(benchmark::State& state) {
  InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  const size_t extra = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < extra; ++i) {
    (void)library.RegisterPrototype(
        MakeWidget(WidgetKind::kPanel, agis::StrCat("proto_", i)));
  }
  const std::string probe = agis::StrCat("proto_", extra / 2);
  for (auto _ : state) {
    auto instance = library.Instantiate(probe);
    benchmark::DoNotOptimize(instance);
  }
  state.counters["prototypes"] =
      static_cast<double>(library.NumPrototypes());
}
BENCHMARK(BM_RegistryLookupScaling)->RangeMultiplier(8)->Range(8, 4096);

void BM_SpecializeCost(benchmark::State& state) {
  InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  (void)RegisterStandardGisPrototypes(&library);
  size_t counter = 0;
  for (auto _ : state) {
    const std::string name = agis::StrCat("special_", counter++);
    auto status = library.Specialize(
        "map_selection_panel", name,
        [](InterfaceObject& w) { w.SetProperty("tuned", "yes"); });
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_SpecializeCost);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C6: library reuse vs hand-built windows ====\n"
              "FromLibrary instantiates shared prototypes (clone);\n"
              "FromScratch hand-codes every tree. The design claim is that\n"
              "clone-based reuse costs no more than hand construction\n"
              "while centralizing look-and-feel in the library.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
