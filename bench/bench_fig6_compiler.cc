// Experiments F3 + F6 — Figure 3 (the customization grammar) and
// Figure 6 (the pole-manager directive). Regenerates the directive,
// its analysis, and the compiled rules (R1/R2/...), then measures the
// parse → analyze → compile pipeline across directive sizes.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "base/strutil.h"
#include "custlang/analyzer.h"
#include "custlang/compiler.h"
#include "custlang/parser.h"
#include "workload/phone_net.h"
#include "workload/synthetic.h"

namespace {

void PrintFigure6() {
  std::printf("==== Figure 3: customization-language constructs ====\n");
  std::printf(
      "  For [user] [category] [application]\n"
      "  schema <name> display as default|hierarchy|user-defined|Null\n"
      "  { class <name> display [control as <widget>]\n"
      "      [presentation as <format>]\n"
      "      [instances { display attribute <a> as <widget|Null>\n"
      "                   [from <source>...] [using <callback>] }*] }+\n\n");

  std::printf("==== Figure 6: the pole-manager directive ====\n%s\n",
              agis::workload::Fig6DirectiveSource().c_str());

  auto directive =
      agis::custlang::ParseDirective(agis::workload::Fig6DirectiveSource());
  std::printf("==== Compiled rules (Section 4's R1 and R2) ====\n%s\n",
              agis::custlang::ExplainCompilation(directive.value()).c_str());
}

/// Synthesizes a directive with `classes` class clauses of `attrs`
/// attribute clauses each against the synthetic schema.
std::string SyntheticDirectiveSource(size_t classes, size_t attrs) {
  std::string out = "For user sweep_user application sweep_app\n";
  for (size_t c = 0; c < classes; ++c) {
    out += agis::StrCat("class class_", c,
                        " display\n  control as class_control\n"
                        "  presentation as pointFormat\n");
    if (attrs > 0) {
      out += "  instances\n";
      for (size_t a = 0; a < attrs; ++a) {
        out += agis::StrCat("    display attribute attr_", a,
                            " as text_field\n");
      }
    }
  }
  return out;
}

struct SemanticRig {
  agis::geodb::GeoDatabase db{"synthetic"};
  agis::uilib::InterfaceObjectLibrary library;
  agis::carto::StyleRegistry styles;

  SemanticRig(size_t classes, size_t attrs) {
    agis::workload::SyntheticSchemaConfig config;
    config.num_classes = classes;
    config.attrs_per_class = attrs;
    config.instances_per_class = 1;
    (void)agis::workload::BuildSyntheticSchema(&db, config);
    (void)library.RegisterKernelPrototypes();
    (void)RegisterStandardGisPrototypes(&library);
    (void)styles.RegisterStandardFormats();
  }
};

void BM_ParseDirective(benchmark::State& state) {
  const std::string source = SyntheticDirectiveSource(
      static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto d = agis::custlang::ParseDirective(source);
    benchmark::DoNotOptimize(d);
  }
  state.counters["classes"] = static_cast<double>(state.range(0));
  state.counters["source_bytes"] = static_cast<double>(source.size());
}
BENCHMARK(BM_ParseDirective)->RangeMultiplier(4)->Range(1, 64);

void BM_AnalyzeDirective(benchmark::State& state) {
  const size_t classes = static_cast<size_t>(state.range(0));
  SemanticRig rig(classes, 4);
  auto d = agis::custlang::ParseDirective(
      SyntheticDirectiveSource(classes, 4));
  for (auto _ : state) {
    auto status = agis::custlang::AnalyzeDirective(
        d.value(), rig.db.schema(), rig.library, rig.styles);
    benchmark::DoNotOptimize(status);
  }
  state.counters["classes"] = static_cast<double>(classes);
}
BENCHMARK(BM_AnalyzeDirective)->RangeMultiplier(4)->Range(1, 64);

void BM_CompileDirective(benchmark::State& state) {
  const size_t classes = static_cast<size_t>(state.range(0));
  auto d = agis::custlang::ParseDirective(
      SyntheticDirectiveSource(classes, 4));
  for (auto _ : state) {
    auto rules = agis::custlang::CompileDirective(d.value());
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules_out"] = static_cast<double>(
      agis::custlang::CompileDirective(d.value()).size());
}
BENCHMARK(BM_CompileDirective)->RangeMultiplier(4)->Range(1, 64);

void BM_FullPipelineFig6(benchmark::State& state) {
  agis::geodb::GeoDatabase db("phone_net");
  (void)agis::workload::BuildPhoneNetwork(&db);
  agis::uilib::InterfaceObjectLibrary library;
  (void)library.RegisterKernelPrototypes();
  (void)RegisterStandardGisPrototypes(&library);
  agis::carto::StyleRegistry styles;
  (void)styles.RegisterStandardFormats();
  const std::string source = agis::workload::Fig6DirectiveSource();
  for (auto _ : state) {
    auto d = agis::custlang::ParseDirective(source);
    auto status = agis::custlang::AnalyzeDirective(d.value(), db.schema(),
                                                   library, styles);
    auto rules = agis::custlang::CompileDirective(d.value());
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_FullPipelineFig6);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
