// Experiment C3 — end-to-end event throughput of the active mechanism
// under a browsing workload: interface interactions generating
// Get_Schema / Get_Class / Get_Value events with growing installed
// rule sets, measured through the full dispatcher stack.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "core/active_interface_system.h"
#include "workload/synthetic.h"

namespace {

std::unique_ptr<agis::core::ActiveInterfaceSystem> MakeSystem(
    size_t num_rules) {
  auto sys = std::make_unique<agis::core::ActiveInterfaceSystem>("synthetic");
  agis::workload::SyntheticSchemaConfig config;
  config.num_classes = 8;
  config.attrs_per_class = 6;
  config.instances_per_class = 40;
  (void)agis::workload::BuildSyntheticSchema(&sys->db(), config);
  agis::workload::DirectiveSweepConfig sweep;
  sweep.num_directives = num_rules;
  sweep.num_classes = 8;
  for (const auto& d : agis::workload::GenerateDirectives(sweep)) {
    (void)sys->InstallDirective(d);
  }
  agis::UserContext ctx;
  ctx.user = "user_0";
  ctx.category = "category_0";
  ctx.application = "app_0";
  sys->dispatcher().set_context(ctx);
  agis::builder::BuildOptions options;
  options.map_width = 40;
  options.map_height = 12;
  sys->dispatcher().set_build_options(options);
  return sys;
}

/// One "browse step": open a class window and one of its instances.
void BrowseStep(agis::core::ActiveInterfaceSystem* sys, size_t step) {
  const std::string cls = "class_" + std::to_string(step % 8);
  auto window = sys->dispatcher().OpenClassWindow(cls);
  benchmark::DoNotOptimize(window);
  auto ids = sys->db().ScanExtent(cls);
  if (ids.ok() && !ids.value().empty()) {
    auto inst = sys->dispatcher().OpenInstanceWindow(
        ids.value()[step % ids.value().size()]);
    benchmark::DoNotOptimize(inst);
  }
}

void BM_BrowseThroughputVsRules(benchmark::State& state) {
  auto sys = MakeSystem(static_cast<size_t>(state.range(0)));
  size_t step = 0;
  for (auto _ : state) {
    BrowseStep(sys.get(), step++);
  }
  // Each browse step emits one Get_Class and one Get_Value event.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
  state.counters["installed_rules"] =
      static_cast<double>(sys->engine().NumRules());
}
BENCHMARK(BM_BrowseThroughputVsRules)
    ->Arg(0)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000);

// Raw event dispatch without window building: the engine-only ceiling.
void BM_EngineEventDispatch(benchmark::State& state) {
  auto sys = MakeSystem(static_cast<size_t>(state.range(0)));
  agis::active::Event event;
  event.name = agis::active::kEventGetClass;
  event.context.user = "user_0";
  event.context.category = "category_0";
  event.context.application = "app_0";
  event.params["class"] = "class_0";
  for (auto _ : state) {
    auto cust = sys->engine().GetCustomization(event);
    benchmark::DoNotOptimize(cust);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["installed_rules"] =
      static_cast<double>(sys->engine().NumRules());
}
BENCHMARK(BM_EngineEventDispatch)->Arg(0)->Arg(10)->Arg(100)->Arg(1000);

// Batched customization resolution: a window-refresh burst resolved
// through GetCustomizationBatch on the system's UI pool versus one
// GetCustomization call per event. Arg is the batch size.
void BM_BatchedCustomizationResolution(benchmark::State& state) {
  auto sys = MakeSystem(1000);
  sys->engine().set_cache_capacity(0);  // Measure resolution, not the memo.
  std::vector<agis::active::Event> events;
  for (int i = 0; i < state.range(0); ++i) {
    agis::active::Event event;
    event.name = agis::active::kEventGetClass;
    event.context.user = "user_" + std::to_string(i % 8);
    event.context.category = "category_0";
    event.context.application = "app_0";
    event.params["class"] = "class_" + std::to_string(i % 8);
    events.push_back(std::move(event));
  }
  for (auto _ : state) {
    auto results =
        sys->engine().GetCustomizationBatch(events, &sys->ui_pool());
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
  state.counters["batch"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_BatchedCustomizationResolution)->Arg(4)->Arg(16)->Arg(64);

// Write events flowing through the bridge into general rules.
void BM_WriteEventThroughBridge(benchmark::State& state) {
  auto sys = MakeSystem(0);
  agis::Rng rng(5);
  for (auto _ : state) {
    auto id = sys->db().Insert(
        "class_0",
        {{"location",
          agis::geodb::Value::MakeGeometry(agis::geom::Geometry::FromPoint(
              {rng.UniformDouble(0, 1000), rng.UniformDouble(0, 1000)}))}});
    benchmark::DoNotOptimize(id);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteEventThroughBridge);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==== C3: event throughput through the active mechanism ====\n"
              "items_per_second counts database events. The claim holds if\n"
              "throughput degrades only mildly from 0 to 1000 installed\n"
              "rules (selection is indexed, window building dominates).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
